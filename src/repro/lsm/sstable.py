"""Sorted String Tables.

An SST holds sorted key/value entries in fixed-target-size *data blocks*,
preceded by a sparse *index block* (first key + offset per data block), a
bloom filter, and min/max fence keys (paper §2.2).  The table body is
allocated on the flash device, so each SST has a genuine physical
placement that NDP commands can reference.

Reads are accounted into a stats object (index blocks read, data blocks
read, bytes read, key comparisons) which the timing model prices.
"""

import bisect
from dataclasses import dataclass

from repro.errors import LSMError
from repro.lsm.bloom import BloomFilter
from repro.lsm.memtable import TOMBSTONE

_ENTRY_HEADER = 8      # 4-byte key length + 4-byte value length
_BLOCK_HEADER = 8
_INDEX_ENTRY_OVERHEAD = 12


@dataclass
class _DataBlock:
    """One sorted run of entries plus its on-flash footprint."""

    first_key: bytes
    last_key: bytes
    entries: list            # list[(key, value)]
    nbytes: int
    offset: int
    keys: list = None        # sorted key array for binary search

    def __post_init__(self):
        if self.keys is None:
            self.keys = [entry[0] for entry in self.entries]


class SSTableBuilder:
    """Accumulates sorted entries and emits an :class:`SSTable`."""

    def __init__(self, block_size=4096, bits_per_key=10):
        if block_size <= 0:
            raise LSMError("block size must be positive")
        self._block_size = block_size
        self._bits_per_key = bits_per_key
        self._entries = []
        self._last_key = None

    def add(self, key, value):
        """Append an entry; keys must arrive in strictly increasing order."""
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise LSMError("SST entries must be bytes")
        if self._last_key is not None and key <= self._last_key:
            raise LSMError(
                f"SST entries out of order: {key!r} after {self._last_key!r}")
        self._entries.append((key, value))
        self._last_key = key

    def __len__(self):
        return len(self._entries)

    def finish(self, flash=None, sst_id=0, level=0):
        """Build the SSTable, allocating it on ``flash`` when given."""
        if not self._entries:
            raise LSMError("cannot build an empty SSTable")
        blocks = []
        offset = 0
        current = []
        current_bytes = _BLOCK_HEADER
        bloom = BloomFilter(len(self._entries), self._bits_per_key)

        def close_block():
            nonlocal current, current_bytes, offset
            block = _DataBlock(
                first_key=current[0][0],
                last_key=current[-1][0],
                entries=current,
                nbytes=current_bytes,
                offset=offset,
            )
            blocks.append(block)
            offset += current_bytes
            current = []
            current_bytes = _BLOCK_HEADER

        for key, value in self._entries:
            bloom.add(key)
            entry_bytes = _ENTRY_HEADER + len(key) + len(value)
            if current and current_bytes + entry_bytes > self._block_size:
                close_block()
            current.append((key, value))
            current_bytes += entry_bytes
        if current:
            close_block()

        index_bytes = sum(
            len(block.first_key) + _INDEX_ENTRY_OVERHEAD for block in blocks)
        total_bytes = offset + index_bytes + bloom.size_bytes
        extent = None
        if flash is not None:
            extent = flash.allocate(total_bytes, owner=f"sst-{sst_id}")
        return SSTable(
            sst_id=sst_id,
            level=level,
            blocks=blocks,
            bloom=bloom,
            index_bytes=index_bytes,
            nbytes=total_bytes,
            entry_count=len(self._entries),
            extent=extent,
        )


class SSTable:
    """An immutable sorted table with sparse index and bloom filter."""

    def __init__(self, sst_id, level, blocks, bloom, index_bytes, nbytes,
                 entry_count, extent=None):
        self.sst_id = sst_id
        self.level = level
        self._blocks = blocks
        self._index_keys = [block.first_key for block in blocks]
        self.bloom = bloom
        self.index_bytes = index_bytes
        self.nbytes = nbytes
        self.entry_count = entry_count
        self.extent = extent
        # Fence pointers as plain attributes: SSTs are immutable, and the
        # read path touches these on every candidate/overlap check.
        #: Smallest key in the table (fence pointer).
        self.min_key = blocks[0].first_key
        #: Largest key in the table (fence pointer).
        self.max_key = blocks[-1].last_key
        # Lazy {key: (block, pos)} map for point lookups; the sparse
        # index + in-block binary search is still *charged* (index and
        # data block cache accesses, key comparisons) exactly as if it
        # had been walked.
        self._point_index = None

    @property
    def block_count(self):
        """Number of data blocks."""
        return len(self._blocks)

    def overlaps(self, lo, hi):
        """Fence-pointer check against key range [lo, hi] (None = open)."""
        if lo is not None and self.max_key < lo:
            return False
        if hi is not None and self.min_key > hi:
            return False
        return True

    def might_contain(self, key, stats=None):
        """Bloom probe; charged to ``stats`` when given."""
        if stats is not None:
            stats.bloom_probes += 1
        hit = self.bloom.might_contain(key)
        if stats is not None and not hit:
            stats.bloom_negatives += 1
        return hit

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _charge_index(self, stats):
        if stats is None:
            return
        if stats.cache is not None and stats.cache.access(
                ("idx", self.sst_id), self.index_bytes):
            stats.cache_hits += 1
            return
        stats.index_blocks_read += 1
        stats.bytes_read += self.index_bytes

    def _charge_data_block(self, stats, block):
        if stats is None:
            return
        if stats.cache is not None and stats.cache.access(
                ("blk", self.sst_id, block.offset), block.nbytes):
            stats.cache_hits += 1
            return
        stats.data_blocks_read += 1
        stats.bytes_read += block.nbytes

    def _locate_block(self, key, stats=None):
        self._charge_index(stats)
        idx = bisect.bisect_right(self._index_keys, key) - 1
        if idx < 0:
            idx = 0
        return idx

    def get(self, key, stats=None):
        """Point lookup: (found, value). Tombstones return (True, None)."""
        if key < self.min_key or key > self.max_key:
            return False, None
        lookup = self._point_index
        if lookup is None:
            lookup = {}
            for block in self._blocks:
                for pos, entry in enumerate(block.entries):
                    lookup[entry[0]] = (block, pos)
            self._point_index = lookup
        hit = lookup.get(key)
        if hit is not None:
            # Charge what the sparse-index walk would have: one index
            # access, the containing data block, log2(block) comparisons.
            block, pos = hit
            self._charge_index(stats)
            self._charge_data_block(stats, block)
            if stats is not None:
                stats.key_comparisons += max(
                    1, len(block.keys).bit_length())
            value = block.entries[pos][1]
            if value == TOMBSTONE:
                return True, None
            return True, value
        # Absent key (bloom false positive): walk the sparse index for
        # real to charge the block the search would have probed.
        idx = self._locate_block(key, stats)
        block = self._blocks[idx]
        self._charge_data_block(stats, block)
        if stats is not None:
            stats.key_comparisons += max(1, len(block.keys).bit_length())
        return False, None

    def iter_range(self, lo=None, hi=None, stats=None):
        """Yield (key, value) for keys in [lo, hi); tombstones included.

        ``hi`` is exclusive to compose cleanly with merging iterators.
        """
        if lo is not None and self._blocks:
            start = self._locate_block(lo, stats)
        else:
            start = 0
            self._charge_index(stats)
        for block in self._blocks[start:]:
            if hi is not None and block.first_key >= hi:
                return
            self._charge_data_block(stats, block)
            for key, value in block.entries:
                if lo is not None and key < lo:
                    continue
                if hi is not None and key >= hi:
                    return
                yield key, value

    def iter_all(self, stats=None):
        """Full scan of the table."""
        return self.iter_range(None, None, stats=stats)

    def __repr__(self):
        return (f"SSTable(id={self.sst_id}, level={self.level}, "
                f"entries={self.entry_count}, blocks={self.block_count})")
