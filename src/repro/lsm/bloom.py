"""Bloom filter over SSTable keys.

Used by the host-side read path to skip SSTs that cannot contain a key.
The NDP engine deliberately does not probe blooms (paper §2.2): they have
already been probed on the host when the command was prepared.
"""

import math
import zlib

from repro.errors import LSMError


class BloomFilter:
    """A classic k-hash bloom filter over bytes keys.

    Hashing uses double CRC32 (fast, deterministic across processes) in
    the usual h1 + i*h2 double-hashing scheme.
    """

    def __init__(self, expected_items, bits_per_key=10):
        if expected_items < 0:
            raise LSMError("expected_items must be non-negative")
        self._nbits = max(64, expected_items * bits_per_key)
        self._nhashes = max(1, int(round(bits_per_key * math.log(2))))
        self._bits = bytearray((self._nbits + 7) // 8)
        self._items = 0

    @property
    def nbits(self):
        """Size of the bit array."""
        return self._nbits

    @property
    def nhashes(self):
        """Number of hash functions."""
        return self._nhashes

    @property
    def items(self):
        """Number of keys added."""
        return self._items

    def add(self, key):
        """Insert a key."""
        nbits = self._nbits
        bits = self._bits
        # (h1 + i*h2) % nbits, computed incrementally in reduced residues
        # so the loop never multiplies or reduces a wide integer.
        pos = zlib.crc32(key) % nbits
        step = (((zlib.crc32(key, 0x9E3779B9) << 15) | 1)) % nbits
        for _ in range(self._nhashes):
            bits[pos >> 3] |= 1 << (pos & 7)
            pos += step
            if pos >= nbits:
                pos -= nbits
        self._items += 1

    def might_contain(self, key):
        """False means definitely absent; True means possibly present."""
        nbits = self._nbits
        bits = self._bits
        pos = zlib.crc32(key) % nbits
        step = (((zlib.crc32(key, 0x9E3779B9) << 15) | 1)) % nbits
        for _ in range(self._nhashes):
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
            pos += step
            if pos >= nbits:
                pos -= nbits
        return True

    def __contains__(self, key):
        return self.might_contain(key)

    @property
    def size_bytes(self):
        """Serialized size of the filter."""
        return len(self._bits)

    def false_positive_rate(self):
        """Theoretical false-positive probability at the current load."""
        if self._items == 0:
            return 0.0
        exponent = -self._nhashes * self._items / self._nbits
        return (1.0 - math.exp(exponent)) ** self._nhashes
