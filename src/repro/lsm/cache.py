"""Block cache.

RocksDB keeps hot data and index blocks in a block cache; the host's
page cache plays the same role for the BLK stack, and the device's
data-block/index-block buffers do on smart storage (§5 memory
reservations).  The cache here is accounting-only: a hit means the block
read is *not* charged to flash I/O.
"""

from collections import OrderedDict


class BlockCache:
    """A byte-capacity LRU over opaque block keys."""

    def __init__(self, capacity_bytes):
        self.capacity_bytes = max(0, int(capacity_bytes))
        self._entries = OrderedDict()     # key -> nbytes
        self._used = 0
        self.hits = 0
        self.misses = 0

    def access(self, key, nbytes):
        """Record an access; returns True on a hit (I/O avoided)."""
        if self.capacity_bytes <= 0:
            self.misses += 1
            return False
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        if nbytes <= self.capacity_bytes:
            self._entries[key] = nbytes
            self._used += nbytes
            while self._used > self.capacity_bytes:
                _evicted, evicted_bytes = self._entries.popitem(last=False)
                self._used -= evicted_bytes
        return False

    @property
    def used_bytes(self):
        """Bytes currently cached."""
        return self._used

    def __len__(self):
        return len(self._entries)

    def hit_rate(self):
        """Fraction of accesses served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
