"""Leveled compaction.

When a level exceeds its size target (``base * ratio^(n-1)``), one SST is
merged with the overlapping SSTs of the next level: all input entries are
sorted, shadowed versions dropped, and the result re-cut into new SSTs at
the target level.  Tombstones are only dropped when the target is the
bottom-most populated level, since deeper levels may still hold shadowed
versions (paper §2.2).
"""

from dataclasses import dataclass, field

from repro.lsm.iterator import merge_sources
from repro.lsm.memtable import TOMBSTONE
from repro.lsm.sstable import SSTableBuilder


@dataclass
class CompactionStats:
    """Aggregate compaction work, for write-amplification accounting."""

    compactions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    entries_dropped: int = 0
    tombstones_purged: int = 0
    per_level: dict = field(default_factory=dict)


class LeveledCompactor:
    """Implements the leveled strategy over a :class:`LevelStructure`."""

    def __init__(self, levels, flash=None, level_base_bytes=8 * 1024 * 1024,
                 size_ratio=10, sst_target_bytes=2 * 1024 * 1024,
                 block_size=4096):
        self._levels = levels
        self._flash = flash
        self._base = level_base_bytes
        self._ratio = size_ratio
        self._sst_target = sst_target_bytes
        self._block_size = block_size
        self._next_sst_id = 1_000_000  # distinct from flush-produced ids
        self.stats = CompactionStats()

    def level_target_bytes(self, n):
        """Size target for level ``n`` (C1 gets the base)."""
        return self._base * (self._ratio ** (n - 1))

    def needs_compaction(self, n):
        """Whether level ``n`` exceeds its target."""
        return self._levels.level_bytes(n) > self.level_target_bytes(n)

    def maybe_compact(self):
        """Run compactions until every level is within target."""
        ran = 0
        # Bounded by total data size; each iteration strictly moves bytes
        # downward, so this terminates.
        for _ in range(1000):
            level = self._pick_level()
            if level is None:
                return ran
            self.compact_level(level)
            ran += 1
        return ran

    def _pick_level(self):
        for n in range(1, self._levels.max_levels):
            if self.needs_compaction(n):
                return n
        return None

    def compact_level(self, n):
        """Merge one SST from level ``n`` into level ``n+1``."""
        source_ssts = self._levels.level(n)
        if not source_ssts:
            return []
        if n == 1:
            # C1 overlaps: take *all* of C1 so the output is disjoint.
            victims = source_ssts
        else:
            victims = [source_ssts[0]]
        lo = min(sst.min_key for sst in victims)
        hi = max(sst.max_key for sst in victims)
        target_level = n + 1
        overlapping = self._levels.overlapping(target_level, lo, hi)

        bottom = self._is_bottom_level(target_level, overlapping)
        # Precedence: victims newest-first (C1 stores oldest-first), then
        # the target level's SSTs.
        sources = [sst.iter_all() for sst in reversed(victims)]
        sources += [sst.iter_all() for sst in overlapping]

        inputs = victims + list(overlapping)
        self.stats.bytes_read += sum(sst.nbytes for sst in inputs)
        input_entries = sum(sst.entry_count for sst in inputs)

        new_ssts = self._rewrite(merge_sources(sources), target_level, bottom)

        for sst in inputs:
            self._levels.remove(sst)
            if self._flash is not None and sst.extent is not None:
                self._flash.free(sst.extent)
        for sst in new_ssts:
            self._levels.add_to_level(target_level, sst)

        output_entries = sum(sst.entry_count for sst in new_ssts)
        self.stats.compactions += 1
        self.stats.entries_dropped += input_entries - output_entries
        self.stats.bytes_written += sum(sst.nbytes for sst in new_ssts)
        self.stats.per_level[n] = self.stats.per_level.get(n, 0) + 1
        return new_ssts

    def _is_bottom_level(self, target_level, overlapping):
        if target_level >= self._levels.max_levels:
            return True
        for deeper in range(target_level + 1, self._levels.max_levels + 1):
            if self._levels.level(deeper):
                return False
        del overlapping
        return True

    def _rewrite(self, merged, target_level, drop_tombstones):
        new_ssts = []
        builder = SSTableBuilder(block_size=self._block_size)
        built_bytes = 0
        for key, value in merged:
            if value == TOMBSTONE and drop_tombstones:
                self.stats.tombstones_purged += 1
                continue
            builder.add(key, value)
            built_bytes += len(key) + len(value)
            if built_bytes >= self._sst_target:
                new_ssts.append(self._finish(builder, target_level))
                builder = SSTableBuilder(block_size=self._block_size)
                built_bytes = 0
        if len(builder):
            new_ssts.append(self._finish(builder, target_level))
        return new_ssts

    def _finish(self, builder, target_level):
        sst_id = self._next_sst_id
        self._next_sst_id += 1
        return builder.finish(flash=self._flash, sst_id=sst_id,
                              level=target_level)
