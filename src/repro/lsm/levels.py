"""Level structure of a multi-level LSM tree.

Level 1 receives freshly flushed MemTables without merging, so its SSTs
may have overlapping key ranges; levels 2..K are produced by compaction
and are non-overlapping and sorted (paper §2.2, Fig. 4).
"""

import bisect

from repro.errors import LSMError


class LevelStructure:
    """Holds the SSTs of levels 1..K for one LSM tree."""

    def __init__(self, max_levels=7, tiered=False):
        """``tiered=True`` allows overlapping runs on every level (the
        size-tiered strategy keeps multiple sorted runs per tier)."""
        if max_levels < 2:
            raise LSMError("need at least 2 levels")
        self.max_levels = max_levels
        self.tiered = tiered
        # _levels[0] is C1 (overlapping); _levels[i] is C(i+1).
        self._levels = [[] for _ in range(max_levels)]
        # Cached per-level min-key arrays for binary search on the read
        # path; rebuilt lazily after mutations.
        self._min_keys = [None] * max_levels
        # Cached all_ssts() read-precedence list; scans call it per
        # range, so it must not be rebuilt per call.
        self._all_ssts = None
        # Cached lookup plan over the non-empty levels only: point gets
        # walk this instead of enumerating every (mostly empty) level.
        self._lookup_plan = None

    # ------------------------------------------------------------------
    # Structure access
    # ------------------------------------------------------------------
    def level(self, n):
        """SSTs of level ``n`` (1-based, matching the paper's C1..CK)."""
        if not 1 <= n <= self.max_levels:
            raise LSMError(f"level {n} out of range 1..{self.max_levels}")
        return list(self._levels[n - 1])

    @property
    def levels(self):
        """All non-empty levels as (level_number, [ssts]) pairs."""
        return [(i + 1, list(ssts))
                for i, ssts in enumerate(self._levels) if ssts]

    def all_ssts(self):
        """Every SST, newest level first, suitable for read precedence."""
        result = self._all_ssts
        if result is None:
            result = []
            for i, ssts in enumerate(self._levels):
                if i == 0 or self.tiered:
                    # Overlapping runs: newest (appended last) first.
                    result.extend(reversed(ssts))
                else:
                    result.extend(ssts)
            self._all_ssts = result
        return result

    def sst_count(self):
        """Total number of SSTs."""
        return sum(len(level) for level in self._levels)

    def level_bytes(self, n):
        """Total bytes stored in level ``n``."""
        return sum(sst.nbytes for sst in self._levels[n - 1])

    def total_bytes(self):
        """Total bytes across all levels."""
        return sum(self.level_bytes(n) for n in range(1, self.max_levels + 1))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_to_level(self, n, sst):
        """Install an SST into level ``n``, keeping sorted order for n>=2
        under the leveled strategy; tiered levels simply stack runs."""
        if not 1 <= n <= self.max_levels:
            raise LSMError(f"level {n} out of range")
        sst.level = n
        bucket = self._levels[n - 1]
        if n == 1 or self.tiered:
            bucket.append(sst)
            self._min_keys[n - 1] = None
            self._all_ssts = None
            self._lookup_plan = None
            return
        keys = [existing.min_key for existing in bucket]
        pos = bisect.bisect_left(keys, sst.min_key)
        if pos > 0 and bucket[pos - 1].max_key >= sst.min_key:
            raise LSMError(
                f"SST overlaps predecessor in non-overlapping level {n}")
        if pos < len(bucket) and bucket[pos].min_key <= sst.max_key:
            raise LSMError(
                f"SST overlaps successor in non-overlapping level {n}")
        bucket.insert(pos, sst)
        self._min_keys[n - 1] = None
        self._all_ssts = None
        self._lookup_plan = None

    def remove(self, sst):
        """Remove an SST wherever it lives."""
        for i, bucket in enumerate(self._levels):
            if sst in bucket:
                bucket.remove(sst)
                self._min_keys[i] = None
                self._all_ssts = None
                self._lookup_plan = None
                return
        raise LSMError(f"SST {sst.sst_id} not present in any level")

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def overlapping(self, n, lo, hi):
        """SSTs of level ``n`` whose fences overlap [lo, hi]."""
        return [sst for sst in self._levels[n - 1] if sst.overlaps(lo, hi)]

    def candidates_for_key(self, key):
        """SSTs possibly containing ``key``, in read-precedence order."""
        plan = self._lookup_plan
        if plan is None:
            plan = []
            for i, bucket in enumerate(self._levels):
                if not bucket:
                    continue
                if i == 0 or self.tiered:
                    # Overlapping runs, newest (appended last) first.
                    plan.append((True, list(reversed(bucket)), None))
                else:
                    plan.append((False, list(bucket),
                                 [sst.min_key for sst in bucket]))
            self._lookup_plan = plan
        result = []
        for overlapping, ssts, keys in plan:
            if overlapping:
                for sst in ssts:
                    if sst.min_key <= key <= sst.max_key:
                        result.append(sst)
            else:
                pos = bisect.bisect_right(keys, key) - 1
                if pos >= 0 and ssts[pos].max_key >= key:
                    result.append(ssts[pos])
        return result

    def check_invariants(self):
        """Validate non-overlap in levels >= 2; raises on violation.

        Tiered structures allow overlap everywhere, so the check passes
        trivially for them.
        """
        if self.tiered:
            return True
        for i, bucket in enumerate(self._levels[1:], start=2):
            for a, b in zip(bucket, bucket[1:]):
                if a.max_key >= b.min_key:
                    raise LSMError(
                        f"level {i} overlap: {a.sst_id} and {b.sst_id}")
                if a.min_key > b.min_key:
                    raise LSMError(f"level {i} not sorted")
        return True
