"""Merging iterators across MemTables and SSTs.

A GET/SCAN must see the newest version of each key: MemTables first, then
C1 SSTs newest-first, then lower levels.  The merging iterator performs a
k-way merge with precedence-based shadowing; tombstones shadow older
versions and are dropped at the top.
"""

import heapq

from repro.lsm.memtable import TOMBSTONE


def merge_sources(sources):
    """k-way merge of (key, value) iterators with precedence shadowing.

    ``sources`` is ordered newest-first; when several sources yield the
    same key, only the newest version is emitted.  Tombstones are emitted
    as-is (callers decide whether to drop them — compaction keeps them
    unless merging into the last level).
    """
    heap = []
    iterators = [iter(source) for source in sources]
    for precedence, iterator in enumerate(iterators):
        try:
            key, value = next(iterator)
        except StopIteration:
            continue
        heap.append((key, precedence, value))
    heapq.heapify(heap)

    last_key = None
    while heap:
        key, precedence, value = heapq.heappop(heap)
        try:
            next_key, next_value = next(iterators[precedence])
            heapq.heappush(heap, (next_key, precedence, next_value))
        except StopIteration:
            pass
        if key == last_key:
            continue  # shadowed by a newer source
        last_key = key
        yield key, value


def live_entries(merged):
    """Drop tombstones from a merged stream (read path)."""
    for key, value in merged:
        if value == TOMBSTONE:
            continue
        yield key, value
