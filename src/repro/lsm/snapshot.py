"""Shared state for intervention-free NDP execution.

nKV sends, alongside every NDP invocation, (a) the unflushed MemTable
contents of each involved column family and (b) the physical placement of
every involved SST, so the device can construct a transactionally
consistent snapshot of the database without further host interaction
(paper §2.1, "Shared State" / update-aware NDP).

:class:`SnapshotView` is the device-side read structure built from one
family's shared state: it merges the shipped MemTable entries with the
referenced SSTs exactly like the live read path, but is pinned — host
writes after capture are invisible, which is what makes the NDP
execution transactionally consistent.
"""

from dataclasses import dataclass, field

from repro.lsm.iterator import live_entries, merge_sources
from repro.lsm.memtable import TOMBSTONE
from repro.lsm.store import ReadStats


@dataclass(frozen=True)
class FamilySnapshot:
    """Snapshot of a single column family."""

    name: str
    memtable_entries: tuple          # ((key, value_or_tombstone), ...)
    placements: tuple                # physical placement dicts
    total_bytes: int
    # Device-side handles to the referenced SSTs (the simulation's
    # address-mapping resolution; not part of the wire payload).
    sst_refs: tuple = field(default=(), repr=False, compare=False)

    @property
    def memtable_count(self):
        """Unflushed entries shipped with the command."""
        return len(self.memtable_entries)

    @property
    def sst_count(self):
        """Number of SSTs the device may touch."""
        return len(self.placements)


class SnapshotView:
    """Pinned read view over one family's shared state.

    Mirrors the :class:`~repro.lsm.store.LSMTree` read API (get/scan with
    a ``stats`` parameter) so the device pipeline can run against it
    unchanged.  By default bloom filters are NOT probed — the paper
    notes the NDP engine skips them since the host already did (§2.2) —
    but ``use_bloom_filters=True`` enables the future-work variant the
    paper anticipates for more powerful devices.
    """

    def __init__(self, snapshot, use_bloom_filters=False):
        self._snapshot = snapshot
        self._memtable = dict(snapshot.memtable_entries)
        self._memtable_sorted = sorted(snapshot.memtable_entries)
        self._ssts = list(snapshot.sst_refs)
        self.use_bloom_filters = use_bloom_filters

    @property
    def name(self):
        """Column family name."""
        return self._snapshot.name

    def get(self, key, stats=None):
        """Point lookup following memtable -> SST precedence."""
        stats = stats if stats is not None else ReadStats()
        if key in self._memtable:
            stats.memtable_gets += 1
            value = self._memtable[key]
            return None if value == TOMBSTONE else value
        for sst in self._ssts:
            if not sst.overlaps(key, key):
                stats.ssts_skipped_fence += 1
                continue
            if self.use_bloom_filters and not sst.might_contain(key, stats):
                stats.ssts_skipped_bloom += 1
                continue
            stats.ssts_considered += 1
            found, value = sst.get(key, stats)
            if found:
                return value
        return None

    def scan(self, lo=None, hi=None, value_predicate=None, stats=None):
        """Range scan over the pinned components."""
        stats = stats if stats is not None else ReadStats()
        sources = [iter([(k, v) for k, v in self._memtable_sorted
                         if (lo is None or k >= lo)
                         and (hi is None or k < hi)])]
        for sst in self._ssts:
            if not sst.overlaps(lo, hi):
                stats.ssts_skipped_fence += 1
                continue
            stats.ssts_considered += 1
            sources.append(sst.iter_range(lo, hi, stats=stats))
        for key, value in live_entries(merge_sources(sources)):
            stats.entries_scanned += 1
            if value_predicate is None or value_predicate(value):
                yield key, value


@dataclass(frozen=True)
class SharedState:
    """Everything an NDP command carries about database state."""

    families: tuple = field(default_factory=tuple)

    @classmethod
    def capture(cls, database, family_names):
        """Capture a consistent snapshot of the named column families."""
        snapshots = []
        for name in family_names:
            family = database.column_family(name)
            tree = family.tree
            entries = tuple(tree.memtable.items())
            placements = tuple(
                tuple(sorted(placement.items(), key=lambda kv: kv[0]))
                if isinstance(placement, dict) else placement
                for placement in tree.placements()
            )
            snapshots.append(FamilySnapshot(
                name=name,
                memtable_entries=entries,
                placements=placements,
                total_bytes=tree.total_bytes(),
                sst_refs=tuple(tree.levels.all_ssts()),
            ))
        return cls(families=tuple(snapshots))

    def view(self, name, use_bloom_filters=False):
        """Device-side :class:`SnapshotView` of one family."""
        return SnapshotView(self.family(name),
                            use_bloom_filters=use_bloom_filters)

    def family(self, name):
        """Snapshot of one family; raises KeyError when absent."""
        for snapshot in self.families:
            if snapshot.name == name:
                return snapshot
        raise KeyError(name)

    @property
    def payload_bytes(self):
        """Approximate command payload size (memtable entries + placement)."""
        total = 0
        for snapshot in self.families:
            for key, value in snapshot.memtable_entries:
                total += len(key) + (len(value) if value else 0)
            total += 64 * len(snapshot.placements)
        return total

    def __len__(self):
        return len(self.families)
