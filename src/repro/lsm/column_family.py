"""Column families and the multi-CF database.

RocksDB partitions one database instance into column families, each with
its own LSM tree and options; MyRocks maps every table and every secondary
index to its own column family (paper §2.2).  All column families share
one flash device so physical placement is globally consistent.
"""

from repro.errors import LSMError
from repro.lsm.store import LSMConfig, LSMTree


class ColumnFamily:
    """A named partition of the database with a dedicated LSM tree."""

    def __init__(self, name, tree):
        self.name = name
        self.tree = tree

    # Thin delegation API so callers don't reach through .tree for basics.
    def put(self, key, value):
        """Write a key/value pair."""
        self.tree.put(key, value)

    def delete(self, key):
        """Delete a key."""
        self.tree.delete(key)

    def get(self, key, stats=None):
        """Point lookup."""
        return self.tree.get(key, stats=stats)

    def scan(self, lo=None, hi=None, value_predicate=None, stats=None):
        """Range scan."""
        return self.tree.scan(lo=lo, hi=hi, value_predicate=value_predicate,
                              stats=stats)

    def apply_batch(self, batch):
        """Apply a :class:`~repro.lsm.store.WriteBatch` atomically."""
        self.tree.apply_batch(batch)

    def __repr__(self):
        return f"ColumnFamily({self.name!r}, {self.tree!r})"


class KVDatabase:
    """A RocksDB-style instance holding multiple column families."""

    def __init__(self, flash=None, default_config=None):
        self.flash = flash
        self._default_config = default_config or LSMConfig()
        self._families = {}
        self.create_column_family("default")

    def create_column_family(self, name, config=None):
        """Create a new column family; names must be unique."""
        if name in self._families:
            raise LSMError(f"column family {name!r} already exists")
        tree = LSMTree(name=name, config=config or self._default_config,
                       flash=self.flash)
        family = ColumnFamily(name, tree)
        self._families[name] = family
        return family

    def drop_column_family(self, name):
        """Drop a column family (the 'default' CF cannot be dropped)."""
        if name == "default":
            raise LSMError("cannot drop the default column family")
        if name not in self._families:
            raise LSMError(f"column family {name!r} does not exist")
        del self._families[name]

    def column_family(self, name):
        """Look up a column family by name."""
        try:
            return self._families[name]
        except KeyError:
            raise LSMError(f"column family {name!r} does not exist") from None

    def __contains__(self, name):
        return name in self._families

    def families(self):
        """All column families."""
        return list(self._families.values())

    def family_names(self):
        """Names of all column families."""
        return list(self._families)

    def flush_all(self):
        """Force-flush every column family (used after bulk loads)."""
        for family in self._families.values():
            family.tree.freeze_and_flush()

    def total_bytes(self):
        """Total on-flash bytes across the instance."""
        return sum(f.tree.total_bytes() for f in self._families.values())

    def __repr__(self):
        return f"KVDatabase(families={sorted(self._families)})"
