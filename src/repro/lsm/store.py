"""The LSM tree: RocksDB-style store built from the pieces in this package.

Provides PUT/DELETE/GET and range/full scans with key- or value-predicates,
automatic flush of full MemTables to C1, leveled compaction, and read-path
statistics that the timing model prices (paper §2.2).
"""

from dataclasses import dataclass, field

from repro.errors import LSMError
from repro.lsm.compaction import LeveledCompactor
from repro.lsm.iterator import live_entries, merge_sources
from repro.lsm.levels import LevelStructure
from repro.lsm.memtable import TOMBSTONE, MemTable
from repro.lsm.sstable import SSTableBuilder


@dataclass
class ReadStats:
    """Physical work done by one read operation (GET or SCAN).

    When ``cache`` is set (a :class:`repro.lsm.cache.BlockCache`), block
    reads served from the cache increment ``cache_hits`` instead of the
    I/O counters — the block-cache model of RocksDB/the page cache.
    """

    memtable_gets: int = 0
    ssts_considered: int = 0
    ssts_skipped_fence: int = 0
    ssts_skipped_bloom: int = 0
    bloom_probes: int = 0
    bloom_negatives: int = 0
    index_blocks_read: int = 0
    data_blocks_read: int = 0
    bytes_read: int = 0
    key_comparisons: int = 0
    entries_scanned: int = 0
    cache_hits: int = 0
    cache: object = field(default=None, compare=False, repr=False)

    def merge(self, other):
        """Accumulate another stats object into this one."""
        for name in self.__dataclass_fields__:
            if name == "cache":
                continue
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self


@dataclass
class _WriteStats:
    puts: int = 0
    deletes: int = 0
    flushes: int = 0
    bytes_flushed: int = 0


@dataclass
class LSMConfig:
    """Tuning knobs for one LSM tree."""

    memtable_size: int = 4 * 1024 * 1024
    block_size: int = 4096
    max_levels: int = 7
    level_base_bytes: int = 8 * 1024 * 1024
    size_ratio: int = 10
    sst_target_bytes: int = 2 * 1024 * 1024
    bits_per_key: int = 10
    auto_compact: bool = True
    compaction: str = "leveled"     # 'leveled' | 'tiered' (paper §2.2)
    tiered_fanout: int = 4
    seed: int = 0

    def __post_init__(self):
        if self.compaction not in ("leveled", "tiered"):
            raise LSMError(
                f"unknown compaction strategy {self.compaction!r}")


class LSMTree:
    """A single-column-family LSM tree."""

    def __init__(self, name="default", config=None, flash=None):
        self.name = name
        self.config = config or LSMConfig()
        self.flash = flash
        self._active = MemTable(self.config.memtable_size, seed=self.config.seed)
        self._immutables = []
        tiered = self.config.compaction == "tiered"
        self.levels = LevelStructure(self.config.max_levels, tiered=tiered)
        if tiered:
            from repro.lsm.tiered import TieredCompactor
            self.compactor = TieredCompactor(
                self.levels,
                flash=flash,
                fanout=self.config.tiered_fanout,
                block_size=self.config.block_size,
            )
        else:
            self.compactor = LeveledCompactor(
                self.levels,
                flash=flash,
                level_base_bytes=self.config.level_base_bytes,
                size_ratio=self.config.size_ratio,
                sst_target_bytes=self.config.sst_target_bytes,
                block_size=self.config.block_size,
            )
        self._next_sst_id = 1
        self.write_stats = _WriteStats()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key, value):
        """Insert or overwrite ``key`` with ``value`` (both bytes)."""
        self._active.put(key, value)
        self.write_stats.puts += 1
        self._maybe_rotate()

    def delete(self, key):
        """Delete ``key`` by writing a tombstone."""
        self._active.delete(key)
        self.write_stats.deletes += 1
        self._maybe_rotate()

    def apply_batch(self, batch):
        """Apply a :class:`WriteBatch` atomically.

        All operations land in the active MemTable before any rotation
        is considered, so a flush can never split the batch across
        components (RocksDB's WriteBatch guarantee).
        """
        for op, key, value in batch.operations:
            if op == "put":
                self._active.put(key, value)
                self.write_stats.puts += 1
            else:
                self._active.delete(key)
                self.write_stats.deletes += 1
        self._maybe_rotate()

    def _maybe_rotate(self):
        if not self._active.is_full():
            return
        self._active.freeze()
        self._immutables.append(self._active)
        self._active = MemTable(self.config.memtable_size,
                                seed=self.config.seed + self.write_stats.flushes + 1)
        self.flush()

    def flush(self):
        """Flush all immutable MemTables to C1 (no merge, paper §2.2)."""
        while self._immutables:
            memtable = self._immutables.pop(0)
            entries = memtable.entries()
            if not entries:
                continue
            builder = SSTableBuilder(block_size=self.config.block_size,
                                     bits_per_key=self.config.bits_per_key)
            for key, value in entries:
                builder.add(key, value)
            sst = builder.finish(flash=self.flash, sst_id=self._next_sst_id,
                                 level=1)
            self._next_sst_id += 1
            self.levels.add_to_level(1, sst)
            self.write_stats.flushes += 1
            self.write_stats.bytes_flushed += sst.nbytes
        if self.config.auto_compact:
            self.compactor.maybe_compact()

    def freeze_and_flush(self):
        """Force the active MemTable out to C1 (e.g. after bulk load)."""
        if len(self._active):
            self._active.freeze()
            self._immutables.append(self._active)
            self._active = MemTable(self.config.memtable_size,
                                    seed=self.config.seed + self.write_stats.flushes + 1)
        self.flush()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def memtable(self):
        """The active MemTable (C0) — shipped as NDP shared state."""
        return self._active

    def get(self, key, stats=None):
        """Point lookup following the C0 -> C1 -> Ck search order."""
        stats = stats if stats is not None else ReadStats()
        stats.memtable_gets += 1
        found, value = self._active.get(key)
        if found:
            return value  # may be None for a tombstone
        for memtable in reversed(self._immutables):
            stats.memtable_gets += 1
            found, value = memtable.get(key)
            if found:
                return value
        for sst in self.levels.candidates_for_key(key):
            # Inlined sst.might_contain(key, stats): this loop runs once
            # per candidate on every point lookup.
            stats.ssts_considered += 1
            stats.bloom_probes += 1
            if not sst.bloom.might_contain(key):
                stats.bloom_negatives += 1
                stats.ssts_skipped_bloom += 1
                continue
            found, value = sst.get(key, stats)
            if found:
                return value
        return None

    def scan(self, lo=None, hi=None, value_predicate=None, stats=None):
        """Range scan over [lo, hi) merging all components.

        With a ``value_predicate`` the scan must still touch every entry of
        the range (the substantial-I/O case NDP targets, paper §2.2); the
        predicate filters the output stream.
        """
        stats = stats if stats is not None else ReadStats()
        sources = []
        if len(self._active):
            sources.append(self._active.items(lo=lo, hi=hi))
        for memtable in reversed(self._immutables):
            if len(memtable):
                sources.append(memtable.items(lo=lo, hi=hi))
        for sst in self.levels.all_ssts():
            if not sst.overlaps(lo, hi if hi is not None else None):
                stats.ssts_skipped_fence += 1
                continue
            stats.ssts_considered += 1
            sources.append(sst.iter_range(lo, hi, stats=stats))
        # A single source needs no heap merge and cannot self-shadow
        # (memtables and SSTs are internally deduplicated).
        merged = sources[0] if len(sources) == 1 else merge_sources(sources)
        for key, value in live_entries(merged):
            stats.entries_scanned += 1
            if value_predicate is None or value_predicate(value):
                yield key, value

    def full_scan(self, value_predicate=None, stats=None):
        """Scan the whole key space."""
        return self.scan(None, None, value_predicate=value_predicate,
                         stats=stats)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entry_count_estimate(self):
        """Approximate number of live entries (ignores shadowing)."""
        count = len(self._active) + sum(len(m) for m in self._immutables)
        count += sum(sst.entry_count for sst in self.levels.all_ssts())
        return count

    def total_bytes(self):
        """Bytes held across all on-flash components."""
        return self.levels.total_bytes()

    def placements(self):
        """Physical placement of every SST (for the NDP command payload)."""
        result = []
        for sst in self.levels.all_ssts():
            entry = {
                "sst_id": sst.sst_id,
                "level": sst.level,
                "min_key": sst.min_key,
                "max_key": sst.max_key,
                "nbytes": sst.nbytes,
            }
            if sst.extent is not None and self.flash is not None:
                entry["extent"] = self.flash.placement_of(sst.extent)
            result.append(entry)
        return result

    def read_amplification(self, key):
        """Number of components a GET for ``key`` may need to touch."""
        memtables = 1 + len(self._immutables)
        return memtables + len(self.levels.candidates_for_key(key))

    def __repr__(self):
        return (f"LSMTree({self.name!r}, memtable={len(self._active)}, "
                f"ssts={self.levels.sst_count()})")


class WriteBatch:
    """An ordered set of writes applied atomically to one LSM tree.

    >>> batch = WriteBatch()
    >>> batch.put(b"k1", b"v1").delete(b"k2")     # doctest: +ELLIPSIS
    <repro.lsm.store.WriteBatch object at ...>
    """

    def __init__(self):
        self.operations = []

    def put(self, key, value):
        """Queue a put; returns self for chaining."""
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise LSMError("batch entries must be bytes")
        self.operations.append(("put", key, value))
        return self

    def delete(self, key):
        """Queue a delete; returns self for chaining."""
        if not isinstance(key, bytes):
            raise LSMError("batch keys must be bytes")
        self.operations.append(("delete", key, None))
        return self

    def __len__(self):
        return len(self.operations)

    def clear(self):
        """Drop all queued operations."""
        self.operations.clear()


def require_bytes(key):
    """Validate a user-supplied key."""
    if not isinstance(key, bytes):
        raise LSMError(f"keys must be bytes, got {type(key)}")
    return key


__all__ = ["LSMTree", "LSMConfig", "ReadStats", "TOMBSTONE", "require_bytes"]
