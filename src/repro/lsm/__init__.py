"""nKV-style LSM key-value substrate (RocksDB/MyRocks model, paper §2).

A multi-level LSM tree per column family: a skiplist MemTable (C0),
Sorted String Tables with sorted data blocks, a sparse index block, bloom
filters and min/max fence pointers; an overlapping C1 and non-overlapping
C2..Ck maintained by leveled compaction; merging iterators for GET/SCAN
with key- and value-predicates; and shared-state snapshots so NDP
executions are transactionally consistent without host interaction.
"""

from repro.lsm.skiplist import SkipList
from repro.lsm.memtable import MemTable
from repro.lsm.bloom import BloomFilter
from repro.lsm.sstable import SSTable, SSTableBuilder
from repro.lsm.levels import LevelStructure
from repro.lsm.store import LSMTree, ReadStats, WriteBatch
from repro.lsm.column_family import ColumnFamily, KVDatabase
from repro.lsm.snapshot import SharedState

TOMBSTONE = b"\x00__repro_tombstone__\x00"

__all__ = [
    "SkipList",
    "MemTable",
    "BloomFilter",
    "SSTable",
    "SSTableBuilder",
    "LevelStructure",
    "LSMTree",
    "ReadStats",
    "WriteBatch",
    "ColumnFamily",
    "KVDatabase",
    "SharedState",
    "TOMBSTONE",
]
