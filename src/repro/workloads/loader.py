"""Environment builder: dataset -> storage -> catalog -> engines.

``build_environment`` generates the synthetic IMDB dataset at a scale
factor, loads it through the relational layer into the LSM store on a
flash device, profiles the hardware, and wires up the stack runner and
the hybrid planner.  The device buffer sizes are scaled by the ratio of
the synthetic dataset to the paper's 16 GB so buffer-pressure effects
(batching, BNL block counts) stay proportionate.

Because the generator is fully seeded, the generated rows can be cached
on disk (``workload_cache_dir`` or ``$REPRO_WORKLOAD_CACHE``) keyed by
the dataset spec; repeated sweeps — and every worker of the parallel JOB
sweep — then skip regeneration and load identical bytes.
"""

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass

from repro.context import reject_removed_kwargs
from repro.core.cost_model import CostModel
from repro.core.hardware import HardwareModel
from repro.core.planner import HybridPlanner
from repro.core.splitter import SplitPlanner
from repro.engine.stacks import StackRunner
from repro.lsm.column_family import KVDatabase
from repro.lsm.store import LSMConfig
from repro.relational.catalog import Catalog
from repro.storage.device import SmartStorageDevice
from repro.storage.flash import FlashDevice
from repro.storage.topology import Topology
from repro.workloads.generator import DatasetGenerator, DatasetSpec
from repro.workloads.imdb_schema import imdb_schemas

#: The paper's dataset: ~16 GB including 6 GB of indexes (§5).
PAPER_DATASET_BYTES = 16 * 1024 ** 3


@dataclass
class Environment:
    """Everything needed to run experiments against one dataset."""

    spec: DatasetSpec
    database: KVDatabase
    catalog: Catalog
    device: SmartStorageDevice
    runner: StackRunner
    planner: HybridPlanner
    hardware: HardwareModel
    buffer_scale: float
    secondary_indexes: bool = True
    #: The machine layout the environment was wired from
    #: (:class:`repro.storage.topology.Topology`); single-device by
    #: default, replaced by ``DeviceCluster`` consumers for scale-out.
    topology: object = None

    def build_kwargs(self):
        """Keyword arguments that rebuild an identical environment."""
        return {
            "scale": self.spec.scale,
            "seed": self.spec.seed,
            "min_rows": self.spec.min_rows,
            "table_overrides": tuple(self.spec.table_overrides),
            "secondary_indexes": self.secondary_indexes,
        }

    @property
    def total_rows(self):
        """Rows loaded across all tables."""
        return self.catalog.total_rows()

    @property
    def total_bytes(self):
        """Data bytes across all tables (excluding indexes)."""
        return self.catalog.total_bytes()

    def run(self, query, stack, split_index=None, ctx=None, **removed):
        """Shortcut to :meth:`StackRunner.run`."""
        reject_removed_kwargs("Environment.run", removed)
        return self.runner.run(query, stack, split_index=split_index,
                               ctx=ctx)

    def decide(self, query, context=None, **removed):
        """Shortcut to :meth:`HybridPlanner.decide`.

        ``context`` is a :class:`~repro.core.planning.PlanningContext`;
        the legacy ``device_load=`` keyword was removed and raises.
        """
        reject_removed_kwargs("Environment.decide", removed)
        return self.planner.decide(query, context=context)


def _lsm_config_for(spec):
    """LSM tuning proportionate to the dataset scale.

    Chosen so the larger tables span several SSTs over 2-3 levels, which
    keeps LSM read-amplification effects (merging iterators, per-SST
    index blocks) visible at any scale.
    """
    memtable = max(16 * 1024, int(2 * 1024 * 1024 * spec.scale * 64))
    return LSMConfig(
        memtable_size=memtable,
        block_size=4096,
        level_base_bytes=4 * memtable,
        size_ratio=8,
        sst_target_bytes=2 * memtable,
        seed=spec.seed,
    )


def _workload_cache_path(cache_dir, spec):
    """Deterministic cache file for one dataset spec."""
    key = repr((spec.scale, spec.seed, spec.min_rows,
                tuple(spec.table_overrides)))
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:20]
    return os.path.join(cache_dir, f"imdb-{digest}.pkl")


def _generate_workload(spec, table_names, cache_dir=None):
    """{table: rows} for the spec, via the on-disk cache when enabled.

    The generator's RNG is shared across tables, so all tables are
    produced in one pass in schema order — the cache stores that whole
    pass and is only valid as a unit.
    """
    path = _workload_cache_path(cache_dir, spec) if cache_dir else None
    if path and os.path.exists(path):
        with open(path, "rb") as handle:
            cached = pickle.load(handle)
        if set(table_names) <= set(cached):
            return cached
    generator = DatasetGenerator(spec)
    rows = {name: list(generator.generate(name)) for name in table_names}
    if path:
        os.makedirs(cache_dir, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(rows, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)     # atomic: concurrent-worker safe
        except OSError:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
    return rows


def build_environment(scale=0.0005, seed=7, secondary_indexes=True,
                      device_spec=None, host_spec=None, min_rows=8,
                      table_overrides=(), workload_cache_dir=None):
    """Generate, load, profile, and wire an :class:`Environment`.

    ``workload_cache_dir`` (default: ``$REPRO_WORKLOAD_CACHE`` when set)
    caches the generated rows on disk so repeated builds of the same
    spec skip generation.
    """
    spec = DatasetSpec(scale=scale, seed=seed, min_rows=min_rows,
                       table_overrides=tuple(table_overrides))
    if workload_cache_dir is None:
        workload_cache_dir = os.environ.get("REPRO_WORKLOAD_CACHE") or None
    flash = FlashDevice()
    database = KVDatabase(flash=flash, default_config=_lsm_config_for(spec))
    catalog = Catalog(database)

    schemas = imdb_schemas(secondary_indexes=secondary_indexes)
    for schema in schemas:
        catalog.create_table(schema)

    workload = _generate_workload(spec, [schema.name for schema in schemas],
                                  cache_dir=workload_cache_dir)
    for schema in schemas:
        table = catalog.table(schema.name)
        table.insert_many(workload[schema.name])
    catalog.flush_all()

    topology = Topology.single(device_spec=device_spec, host_spec=host_spec,
                               flash=flash)
    device = topology.device
    host = topology.host

    # Scale device buffers by dataset-size ratio (floors keep batching
    # meaningful at tiny scales).
    dataset_bytes = max(1, catalog.total_bytes())
    buffer_scale = max(2e-4, dataset_bytes / PAPER_DATASET_BYTES)

    hardware = HardwareModel.profile(device, host)
    cost_model = CostModel(hardware)
    # The minimum-transfer-volume precondition (§3.3) scales with the
    # dataset like every buffer does.
    min_transfer = max(256, int(64 * 1024 * buffer_scale * 1024))
    split_planner = SplitPlanner(hardware, cost_model,
                                 min_transfer_bytes=min_transfer)
    planner = HybridPlanner(catalog, device, hardware,
                            cost_model=cost_model,
                            split_planner=split_planner)
    runner = StackRunner(catalog, database, device, host_spec=host,
                         buffer_scale=buffer_scale)
    return Environment(
        spec=spec,
        database=database,
        catalog=catalog,
        device=device,
        runner=runner,
        planner=planner,
        hardware=hardware,
        buffer_scale=buffer_scale,
        secondary_indexes=secondary_indexes,
        topology=topology,
    )
