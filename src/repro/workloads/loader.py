"""Environment builder: dataset -> storage -> catalog -> engines.

``build_environment`` generates the synthetic IMDB dataset at a scale
factor, loads it through the relational layer into the LSM store on a
flash device, profiles the hardware, and wires up the stack runner and
the hybrid planner.  The device buffer sizes are scaled by the ratio of
the synthetic dataset to the paper's 16 GB so buffer-pressure effects
(batching, BNL block counts) stay proportionate.
"""

from dataclasses import dataclass

from repro.core.cost_model import CostModel
from repro.core.hardware import HardwareModel
from repro.core.planner import HybridPlanner
from repro.core.splitter import SplitPlanner
from repro.engine.stacks import StackRunner
from repro.lsm.column_family import KVDatabase
from repro.lsm.store import LSMConfig
from repro.relational.catalog import Catalog
from repro.storage.device import SmartStorageDevice
from repro.storage.flash import FlashDevice
from repro.storage.machines import COSMOS_PLUS, HOST_I5
from repro.workloads.generator import DatasetGenerator, DatasetSpec
from repro.workloads.imdb_schema import imdb_schemas

#: The paper's dataset: ~16 GB including 6 GB of indexes (§5).
PAPER_DATASET_BYTES = 16 * 1024 ** 3


@dataclass
class Environment:
    """Everything needed to run experiments against one dataset."""

    spec: DatasetSpec
    database: KVDatabase
    catalog: Catalog
    device: SmartStorageDevice
    runner: StackRunner
    planner: HybridPlanner
    hardware: HardwareModel
    buffer_scale: float

    @property
    def total_rows(self):
        """Rows loaded across all tables."""
        return self.catalog.total_rows()

    @property
    def total_bytes(self):
        """Data bytes across all tables (excluding indexes)."""
        return self.catalog.total_bytes()

    def run(self, query, stack, split_index=None):
        """Shortcut to :meth:`StackRunner.run`."""
        return self.runner.run(query, stack, split_index=split_index)

    def decide(self, query):
        """Shortcut to :meth:`HybridPlanner.decide`."""
        return self.planner.decide(query)


def _lsm_config_for(spec):
    """LSM tuning proportionate to the dataset scale.

    Chosen so the larger tables span several SSTs over 2-3 levels, which
    keeps LSM read-amplification effects (merging iterators, per-SST
    index blocks) visible at any scale.
    """
    memtable = max(16 * 1024, int(2 * 1024 * 1024 * spec.scale * 64))
    return LSMConfig(
        memtable_size=memtable,
        block_size=4096,
        level_base_bytes=4 * memtable,
        size_ratio=8,
        sst_target_bytes=2 * memtable,
        seed=spec.seed,
    )


def build_environment(scale=0.0005, seed=7, secondary_indexes=True,
                      device_spec=None, host_spec=None, min_rows=8,
                      table_overrides=()):
    """Generate, load, profile, and wire an :class:`Environment`."""
    spec = DatasetSpec(scale=scale, seed=seed, min_rows=min_rows,
                       table_overrides=tuple(table_overrides))
    flash = FlashDevice()
    database = KVDatabase(flash=flash, default_config=_lsm_config_for(spec))
    catalog = Catalog(database)

    for schema in imdb_schemas(secondary_indexes=secondary_indexes):
        catalog.create_table(schema)

    generator = DatasetGenerator(spec)
    for schema in imdb_schemas(secondary_indexes=secondary_indexes):
        table = catalog.table(schema.name)
        table.insert_many(generator.generate(schema.name))
    catalog.flush_all()

    device = SmartStorageDevice(spec=device_spec or COSMOS_PLUS,
                                flash=flash)
    host = host_spec or HOST_I5

    # Scale device buffers by dataset-size ratio (floors keep batching
    # meaningful at tiny scales).
    dataset_bytes = max(1, catalog.total_bytes())
    buffer_scale = max(2e-4, dataset_bytes / PAPER_DATASET_BYTES)

    hardware = HardwareModel.profile(device, host)
    cost_model = CostModel(hardware)
    # The minimum-transfer-volume precondition (§3.3) scales with the
    # dataset like every buffer does.
    min_transfer = max(256, int(64 * 1024 * buffer_scale * 1024))
    split_planner = SplitPlanner(hardware, cost_model,
                                 min_transfer_bytes=min_transfer)
    planner = HybridPlanner(catalog, device, hardware,
                            cost_model=cost_model,
                            split_planner=split_planner)
    runner = StackRunner(catalog, database, device, host_spec=host,
                         buffer_scale=buffer_scale)
    return Environment(
        spec=spec,
        database=database,
        catalog=catalog,
        device=device,
        runner=runner,
        planner=planner,
        hardware=hardware,
        buffer_scale=buffer_scale,
    )
