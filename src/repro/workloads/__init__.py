"""Join-Order Benchmark workload (synthetic IMDB).

The paper evaluates on JOB [Leis et al., VLDB 2015] over the IMDB dataset
(~74 M rows, 21 tables) with the modifications of §5: fixed-size byte
lengths for character values and 4-byte integers.  This package provides
the 21-table schema, a seeded synthetic generator whose value
distributions carry the constants the queries filter on, all 33 query
families with their 113 variants, a loader that builds a ready
environment at a configurable scale factor, and a seed-deterministic
random query generator (:mod:`repro.workloads.sqlgen`) for workloads
beyond the fixed JOB diet.
"""

from repro.workloads.imdb_schema import JOB_TABLE_NAMES, imdb_schemas
from repro.workloads.generator import DatasetSpec, generate_dataset
from repro.workloads.job_queries import (JOB_FAMILIES, all_queries,
                                         queries_in_family, query)
from repro.workloads.loader import Environment, build_environment
from repro.workloads.sqlgen import (GeneratedQuery, RandomSqlGenerator,
                                    SqlGenConfig, generate_corpus)

__all__ = [
    "GeneratedQuery",
    "RandomSqlGenerator",
    "SqlGenConfig",
    "generate_corpus",
    "JOB_TABLE_NAMES",
    "imdb_schemas",
    "DatasetSpec",
    "generate_dataset",
    "JOB_FAMILIES",
    "all_queries",
    "queries_in_family",
    "query",
    "Environment",
    "build_environment",
]
