"""Seeded random SQL workload generator over the synthetic IMDB schema.

Produces unbounded novel-but-valid queries in the shape of defio's
``RandomSqlGenerator``: a weighted join-graph sampler walks the foreign
key edges of the 21 JOB tables, predicate samplers draw constants from
the dataset generator's vocabularies (``KIND_TYPES``, ``INFO_TYPES``,
``GENRES``, ...) so selectivities are non-degenerate on the synthetic
data, and aggregate/projection samplers emit the SELECT list.  Every
query round-trips through :func:`repro.query.parser.parse_query` and
plans under :class:`~repro.core.planner.HybridPlanner`.

Determinism contract: query ``i`` of seed ``s`` is a pure function of
``(s, i)`` — independent of how many queries are generated, in what
order, or on which machine — so a failing query replays from its
``(seed, index)`` pair alone (see docs/workloads.md).

Generated queries deliberately avoid two grammar corners:

* ``LIMIT`` — which N rows survive depends on physical row order, so
  host/split/cluster strategies could all be correct yet disagree; the
  differential harness (:mod:`repro.bench.fuzz`) needs row-identical
  results.
* ``SELECT *`` — the projected column set is well-defined but wide,
  which only slows the differential sweeps down without adding grammar
  coverage.

Both stay covered by the parser's unit tests instead.
"""

import random
from dataclasses import dataclass

from repro.errors import ReproError
from repro.query.parser import parse_query
from repro.relational import DataType
from repro.query.render import render_string
from repro.workloads.generator import (CI_NOTES, COMP_CAST_TYPES,
                                       COMPANY_TYPES, COUNTRY_CODES, GENRES,
                                       INFO_TYPES, KIND_TYPES, LANGUAGES,
                                       LINK_TYPES, MC_NOTES, MI_COUNTRIES,
                                       ROLE_TYPES, _NAMED_KEYWORDS,
                                       _TITLE_WORDS)
from repro.workloads.imdb_schema import BASE_ROW_COUNTS, imdb_schemas

# ----------------------------------------------------------------------
# Schema metadata: aliases, foreign keys, column types
# ----------------------------------------------------------------------

#: Canonical JOB-style alias per table (a repeated walk never reuses a
#: table, so aliases are unique within a query).
TABLE_ALIASES = {
    "aka_name": "an",
    "aka_title": "at",
    "cast_info": "ci",
    "char_name": "chn",
    "comp_cast_type": "cct",
    "company_name": "cn",
    "company_type": "ct",
    "complete_cast": "cc",
    "info_type": "it",
    "keyword": "k",
    "kind_type": "kt",
    "link_type": "lt",
    "movie_companies": "mc",
    "movie_info": "mi",
    "movie_info_idx": "mi_idx",
    "movie_keyword": "mk",
    "movie_link": "ml",
    "name": "n",
    "person_info": "pi",
    "role_type": "rt",
    "title": "t",
}


@dataclass(frozen=True)
class FkEdge:
    """A foreign-key edge ``child.child_column -> parent.id``."""

    child: str
    child_column: str
    parent: str


#: The join graph the sampler walks (every parent column is ``id``).
FK_EDGES = (
    FkEdge("aka_name", "person_id", "name"),
    FkEdge("aka_title", "movie_id", "title"),
    FkEdge("aka_title", "kind_id", "kind_type"),
    FkEdge("cast_info", "movie_id", "title"),
    FkEdge("cast_info", "person_id", "name"),
    FkEdge("cast_info", "person_role_id", "char_name"),
    FkEdge("cast_info", "role_id", "role_type"),
    FkEdge("complete_cast", "movie_id", "title"),
    FkEdge("complete_cast", "subject_id", "comp_cast_type"),
    FkEdge("movie_companies", "movie_id", "title"),
    FkEdge("movie_companies", "company_id", "company_name"),
    FkEdge("movie_companies", "company_type_id", "company_type"),
    FkEdge("movie_info", "movie_id", "title"),
    FkEdge("movie_info", "info_type_id", "info_type"),
    FkEdge("movie_info_idx", "movie_id", "title"),
    FkEdge("movie_info_idx", "info_type_id", "info_type"),
    FkEdge("movie_keyword", "movie_id", "title"),
    FkEdge("movie_keyword", "keyword_id", "keyword"),
    FkEdge("movie_link", "movie_id", "title"),
    FkEdge("movie_link", "link_type_id", "link_type"),
    FkEdge("person_info", "person_id", "name"),
    FkEdge("person_info", "info_type_id", "info_type"),
    FkEdge("title", "kind_id", "kind_type"),
)

#: Tables worth starting a walk from (fact tables with several edges),
#: with sampling weights: starting from a relationship table yields the
#: JOB-like star shapes, starting from ``title`` yields snowflakes.
_START_WEIGHTS = {
    "title": 24,
    "cast_info": 10,
    "movie_companies": 14,
    "movie_info": 10,
    "movie_info_idx": 10,
    "movie_keyword": 10,
    "movie_link": 6,
    "complete_cast": 4,
    "aka_title": 4,
    "person_info": 4,
    "aka_name": 4,
}

#: Tables that are large at any scale: the walk keeps their count per
#: query bounded so pure-python join pyramids stay tractable.
_BIG_TABLES = frozenset(name for name, rows in BASE_ROW_COUNTS.items()
                        if rows >= 1_000_000)

#: Walking onto a dimension table is cheaper and more JOB-like than
#: chaining another fact table, so dimension ends get higher weight.
_EDGE_WEIGHT_DIMENSION = 4
_EDGE_WEIGHT_FACT = 1


# ----------------------------------------------------------------------
# Predicate vocabulary: (table, column) -> sampler specs
# ----------------------------------------------------------------------

_YEAR_LO, _YEAR_HI = 1925, 2018

#: LIKE fragments that actually occur in the generated note vocabularies.
_MC_NOTE_FRAGMENTS = ["(co-production)", "(presents)", "(USA)",
                      "(worldwide)", "(theatrical)", "(VHS)", "(TV)"]
_CI_NOTE_FRAGMENTS = ["(voice)", "(uncredited)", "(producer)", "(writer)",
                      "(story)", "(archive footage)"]


def _eq(rng, column, vocab):
    return f"{column} = {render_string(rng.choice(vocab))}"


def _in(rng, column, vocab, lo=2, hi=4):
    count = rng.randint(lo, min(hi, len(vocab)))
    values = rng.sample(vocab, count)
    rendered = ", ".join(render_string(v) for v in values)
    negated = "NOT IN" if rng.random() < 0.15 else "IN"
    return f"{column} {negated} ({rendered})"


def _like(rng, column, fragments):
    negated = "NOT LIKE" if rng.random() < 0.25 else "LIKE"
    return (f"{column} {negated} "
            f"{render_string('%' + rng.choice(fragments) + '%')}")


def _prefix_like(rng, column, alphabet="ABCDEGKLMNRSTW"):
    return f"{column} LIKE {render_string(rng.choice(alphabet) + '%')}"


def _null(rng, column):
    negated = "IS NOT NULL" if rng.random() < 0.5 else "IS NULL"
    return f"{column} {negated}"


def _year(rng, column):
    shape = rng.random()
    if shape < 0.5:
        lo = rng.randint(_YEAR_LO, _YEAR_HI - 5)
        return f"{column} BETWEEN {lo} AND {lo + rng.randint(3, 25)}"
    if shape < 0.8:
        return f"{column} > {rng.randint(_YEAR_LO, _YEAR_HI)}"
    return f"{column} < {rng.randint(_YEAR_LO, _YEAR_HI)}"


def _int_range(rng, column, lo, hi):
    shape = rng.random()
    if shape < 0.4:
        a = rng.randint(lo, hi - 1)
        return f"{column} BETWEEN {a} AND {a + rng.randint(1, hi - a)}"
    op = rng.choice(["<", "<=", ">", ">="])
    return f"{column} {op} {rng.randint(lo, hi)}"


def _rating(rng, column):
    # movie_info_idx ratings are strings like "7.3"; JOB compares them
    # lexicographically ("mi_idx.info > '5.0'"), which works because the
    # format is fixed-width.
    value = f"{rng.randint(1, 9)}.{rng.randint(0, 9)}"
    op = rng.choice([">", "<", ">=", "<="])
    return f"{column} {op} {render_string(value)}"


#: {table: [sampler(rng, qualified_column) -> predicate SQL]} — every
#: constant comes from the dataset generator's vocabularies, so the
#: predicates select real value ranges of the synthetic data.
def _build_predicate_pool():
    mi_vocab = GENRES + MI_COUNTRIES + LANGUAGES
    mc_notes = [note for note in MC_NOTES if note]
    ci_notes = [note for note in CI_NOTES if note]
    named_info = INFO_TYPES[:22]
    return {
        "title": [
            ("production_year", _year),
            ("production_year", _year),
            ("title", lambda rng, col: _like(rng, col, _TITLE_WORDS)),
            ("title", _prefix_like),
            ("episode_nr", _null),
            ("episode_nr", lambda rng, col: _int_range(rng, col, 1, 400)),
            ("imdb_index", _null),
        ],
        "kind_type": [
            ("kind", lambda rng, col: _eq(rng, col, KIND_TYPES)),
            ("kind", lambda rng, col: _in(rng, col, KIND_TYPES)),
        ],
        "company_type": [
            ("kind", lambda rng, col: _eq(rng, col, COMPANY_TYPES)),
            ("kind", lambda rng, col: _in(rng, col, COMPANY_TYPES, 2, 3)),
        ],
        "comp_cast_type": [
            ("kind", lambda rng, col: _eq(rng, col, COMP_CAST_TYPES)),
        ],
        "role_type": [
            ("role", lambda rng, col: _eq(rng, col, ROLE_TYPES)),
            ("role", lambda rng, col: _in(rng, col, ROLE_TYPES)),
        ],
        "link_type": [
            ("link", lambda rng, col: _eq(rng, col, LINK_TYPES)),
            ("link", lambda rng, col: _in(rng, col, LINK_TYPES)),
        ],
        "info_type": [
            ("info", lambda rng, col: _eq(rng, col, named_info)),
            ("info", lambda rng, col: _in(rng, col, named_info)),
        ],
        "company_name": [
            ("country_code", lambda rng, col: _eq(rng, col, COUNTRY_CODES)),
            ("country_code", lambda rng, col: _in(rng, col, COUNTRY_CODES)),
            ("country_code", _null),
            ("name", lambda rng, col: _like(
                rng, col, ["Pictures", "Films", "Studio", "Entertainment"])),
            ("name", lambda rng, col: _like(rng, col, _TITLE_WORDS)),
        ],
        "keyword": [
            ("keyword", lambda rng, col: _eq(rng, col, _NAMED_KEYWORDS)),
            ("keyword", lambda rng, col: _in(rng, col, _NAMED_KEYWORDS)),
            ("keyword", lambda rng, col: _like(
                rng, col, ["super", "based-on", "title", "sequel"])),
        ],
        "movie_companies": [
            ("note", lambda rng, col: _like(rng, col, _MC_NOTE_FRAGMENTS)),
            ("note", lambda rng, col: _in(rng, col, mc_notes, 2, 4)),
            ("note", _null),
        ],
        "cast_info": [
            ("note", lambda rng, col: _like(rng, col, _CI_NOTE_FRAGMENTS)),
            ("note", lambda rng, col: _in(rng, col, ci_notes, 2, 4)),
            ("note", _null),
            ("nr_order", lambda rng, col: _int_range(rng, col, 1, 40)),
            ("nr_order", _null),
        ],
        "movie_info": [
            ("info", lambda rng, col: _eq(rng, col, mi_vocab)),
            ("info", lambda rng, col: _in(rng, col, GENRES, 2, 5)),
            ("info", lambda rng, col: _in(rng, col, MI_COUNTRIES, 2, 4)),
            ("info", lambda rng, col: _in(rng, col, LANGUAGES, 2, 4)),
            ("note", _null),
        ],
        "movie_info_idx": [
            ("info", _rating),
            ("info", _prefix_like),
        ],
        "name": [
            ("gender", lambda rng, col: _eq(rng, col, ["m", "f"])),
            ("gender", _null),
            ("name", _prefix_like),
            ("name", lambda rng, col: _like(
                rng, col, ["an", "or", "el", "son"])),
            ("imdb_index", _null),
        ],
        "char_name": [
            ("name", _prefix_like),
        ],
        "aka_name": [
            ("name", _prefix_like),
        ],
        "aka_title": [
            ("production_year", _year),
            ("title", lambda rng, col: _like(rng, col, _TITLE_WORDS)),
        ],
        "person_info": [
            ("note", _null),
        ],
        "complete_cast": [],
        "movie_keyword": [],
        "movie_link": [],
        "person_info_extra": [],
    }


_PREDICATE_POOL = _build_predicate_pool()

#: Aggregatable columns per table (int columns for SUM/AVG; any column
#: for MIN/MAX), derived from the schema so they cannot drift.
_SCHEMAS = {schema.name: schema for schema in imdb_schemas()}

#: Low-cardinality columns worth grouping on.
_GROUP_COLUMNS = {
    "title": ["kind_id", "production_year"],
    "cast_info": ["role_id"],
    "name": ["gender"],
    "company_name": ["country_code"],
    "movie_companies": ["company_type_id"],
    "movie_info": ["info_type_id"],
    "movie_info_idx": ["info_type_id"],
    "kind_type": ["kind"],
    "role_type": ["role"],
    "info_type": ["info"],
    "complete_cast": ["subject_id"],
    "movie_link": ["link_type_id"],
}


# ----------------------------------------------------------------------
# Configuration and query record
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SqlGenConfig:
    """Knobs of the sampler (all probabilities in [0, 1])."""

    min_tables: int = 2
    max_tables: int = 6
    max_big_tables: int = 2     # large relationship tables per query
    min_predicates: int = 1
    max_predicates: int = 4
    p_extra_edge: float = 0.25  # transitive edge between two FK siblings
    p_or_group: float = 0.2     # wrap two predicates of a table in OR
    p_group_by: float = 0.2
    p_plain_projection: float = 0.15
    max_aggregates: int = 3

    def __post_init__(self):
        if not 1 <= self.min_tables <= self.max_tables:
            raise ReproError("need 1 <= min_tables <= max_tables")
        if self.max_tables > len(TABLE_ALIASES):
            raise ReproError("max_tables exceeds the schema's table count")
        if self.min_predicates > self.max_predicates:
            raise ReproError("min_predicates exceeds max_predicates")


@dataclass(frozen=True)
class GeneratedQuery:
    """One sampled query, addressable as ``(seed, index)``."""

    seed: int
    index: int
    sql: str
    tables: tuple = ()           # table names in FROM order

    @property
    def name(self):
        """Stable display name, e.g. ``gen7-42``."""
        return f"gen{self.seed}-{self.index}"

    def to_dict(self):
        return {"seed": self.seed, "index": self.index, "name": self.name,
                "tables": list(self.tables), "sql": self.sql}


# ----------------------------------------------------------------------
# The generator
# ----------------------------------------------------------------------

class RandomSqlGenerator:
    """Seed-deterministic random query sampler.

    ``generate(n)`` returns queries ``0..n-1`` of the seed;
    ``generate_one(index)`` returns any single one.  Each query draws
    from its own ``random.Random(f"{seed}:{index}")`` stream, so the
    corpus is stable under prefixing: the first 25 queries of a
    200-query corpus are byte-identical to a 25-query corpus.
    """

    def __init__(self, seed=0, config=None):
        self.seed = seed
        self.config = config or SqlGenConfig()
        self._adjacency = {}
        for edge in FK_EDGES:
            self._adjacency.setdefault(edge.child, []).append(edge)
            self._adjacency.setdefault(edge.parent, []).append(edge)

    def generate(self, count):
        """The first ``count`` queries of this seed."""
        return [self.generate_one(index) for index in range(count)]

    def generate_one(self, index):
        """Query ``index`` of this seed (pure function of both)."""
        rng = random.Random(f"{self.seed}:{index}")
        tables = self._sample_join_graph(rng)
        aliases = {name: TABLE_ALIASES[name] for name in tables}
        joins = self._join_conditions(rng, tables, aliases)
        predicates = self._sample_predicates(rng, tables, aliases)
        select, group_by = self._sample_select(rng, tables, aliases)
        sql = self._render(select, tables, aliases, joins + predicates,
                           group_by)
        # The generator's own contract: everything it emits parses.
        parse_query(sql)
        return GeneratedQuery(seed=self.seed, index=index, sql=sql,
                              tables=tuple(tables))

    # ------------------------------------------------------------------
    # Join-graph sampling
    # ------------------------------------------------------------------
    def _sample_join_graph(self, rng):
        """A connected table set sampled by walking FK edges."""
        config = self.config
        target = rng.randint(config.min_tables, config.max_tables)
        start_names = sorted(_START_WEIGHTS)
        start = rng.choices(
            start_names,
            weights=[_START_WEIGHTS[name] for name in start_names])[0]
        tables = [start]
        used = {start}
        big_used = 1 if start in _BIG_TABLES else 0
        while len(tables) < target:
            frontier = []
            weights = []
            for name in tables:
                for edge in self._adjacency[name]:
                    other = (edge.parent if edge.child == name
                             else edge.child)
                    if other in used:
                        continue
                    if (other in _BIG_TABLES
                            and big_used >= config.max_big_tables):
                        continue
                    frontier.append(other)
                    weights.append(_EDGE_WEIGHT_FACT
                                   if other in _BIG_TABLES
                                   else _EDGE_WEIGHT_DIMENSION)
            if not frontier:
                break
            chosen = rng.choices(frontier, weights=weights)[0]
            tables.append(chosen)
            used.add(chosen)
            if chosen in _BIG_TABLES:
                big_used += 1
        return tables

    def _join_conditions(self, rng, tables, aliases):
        """Equi-join conditions covering the sampled tables."""
        used = set(tables)
        conditions = []
        fk_children = {}     # (parent, child_column) -> [child alias]
        for edge in FK_EDGES:
            if edge.child in used and edge.parent in used:
                child = aliases[edge.child]
                parent = aliases[edge.parent]
                conditions.append(
                    f"{child}.{edge.child_column} = {parent}.id")
                fk_children.setdefault(
                    (edge.parent, edge.child_column), []).append(child)
        # Transitive sibling edges, the JOB idiom
        # ``mc.movie_id = mi_idx.movie_id`` (redundant but real).
        for (_parent, column), children in sorted(fk_children.items()):
            if len(children) >= 2 and rng.random() < self.config.p_extra_edge:
                left, right = rng.sample(children, 2)
                conditions.append(f"{left}.{column} = {right}.{column}")
        return conditions

    # ------------------------------------------------------------------
    # Predicate sampling
    # ------------------------------------------------------------------
    def _sample_predicates(self, rng, tables, aliases):
        config = self.config
        candidates = []
        for name in tables:
            pool = _PREDICATE_POOL.get(name) or ()
            for column, sampler in pool:
                candidates.append((name, column, sampler))
        if not candidates:
            return []
        count = rng.randint(config.min_predicates, config.max_predicates)
        count = min(count, len(candidates))
        chosen = rng.sample(candidates, count)
        predicates = []
        for name, column, sampler in chosen:
            qualified = f"{aliases[name]}.{column}"
            predicates.append(sampler(rng, qualified))
        # OR group: two fresh predicates over one table, parenthesized.
        if predicates and rng.random() < config.p_or_group:
            name = rng.choice([name for name in tables
                               if _PREDICATE_POOL.get(name)])
            pool = _PREDICATE_POOL[name]
            (col_a, samp_a), (col_b, samp_b) = (
                rng.choice(pool), rng.choice(pool))
            left = samp_a(rng, f"{aliases[name]}.{col_a}")
            right = samp_b(rng, f"{aliases[name]}.{col_b}")
            predicates.append(f"({left} OR {right})")
        return predicates

    # ------------------------------------------------------------------
    # SELECT-list sampling
    # ------------------------------------------------------------------
    def _columns_of(self, name):
        return [column.name for column in _SCHEMAS[name].columns]

    def _int_columns_of(self, name):
        return [column.name for column in _SCHEMAS[name].columns
                if column.dtype is DataType.INT]

    def _sample_select(self, rng, tables, aliases):
        """Returns ``(select_items, group_by_columns)``."""
        config = self.config
        shape = rng.random()
        if shape < config.p_plain_projection:
            count = rng.randint(1, 3)
            items = []
            for _ in range(count):
                name = rng.choice(tables)
                column = rng.choice(self._columns_of(name))
                items.append(f"{aliases[name]}.{column}")
            return items, []

        group_by = []
        if rng.random() < config.p_group_by:
            groupable = [name for name in tables if name in _GROUP_COLUMNS]
            if groupable:
                name = rng.choice(groupable)
                column = rng.choice(_GROUP_COLUMNS[name])
                group_by = [f"{aliases[name]}.{column}"]

        count = rng.randint(1, config.max_aggregates)
        items = []
        for position in range(count):
            kind = rng.choices(["min", "max", "count", "sum", "avg"],
                               weights=[40, 15, 25, 10, 10])[0]
            if kind == "count":
                items.append(f"COUNT(*) AS c{position}")
                continue
            name = rng.choice(tables)
            if kind in ("sum", "avg"):
                columns = self._int_columns_of(name)
                if not columns:
                    items.append(f"COUNT(*) AS c{position}")
                    continue
            else:
                columns = self._columns_of(name)
            column = rng.choice(columns)
            items.append(f"{kind.upper()}({aliases[name]}.{column}) "
                         f"AS a{position}")
        return items, group_by

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _render(select, tables, aliases, conditions, group_by):
        parts = ["SELECT " + ",\n       ".join(select)]
        parts.append("FROM " + ", ".join(
            f"{name} AS {aliases[name]}" for name in tables))
        if conditions:
            parts.append("WHERE " + "\n  AND ".join(conditions))
        if group_by:
            parts.append("GROUP BY " + ", ".join(group_by))
        return "\n".join(parts)


def generate_corpus(seed, count, config=None):
    """The first ``count`` queries of ``seed`` (module-level shortcut)."""
    return RandomSqlGenerator(seed=seed, config=config).generate(count)


__all__ = ["FK_EDGES", "FkEdge", "GeneratedQuery", "RandomSqlGenerator",
           "SqlGenConfig", "TABLE_ALIASES", "generate_corpus"]
