"""The Join-Order Benchmark query suite (33 families, 113 queries).

Queries the paper quotes are transcribed verbatim from JOB (Q1a from
Listing 1, Q8c from Listing 3, Q8d as described, plus Q17b and Q32b used
in Experiment 1 and the Listing-2 non-indexed join).  The remaining
variants are reconstructed per-family: the real JOB table sets and join
graphs with predicate variants drawn from the generator's vocabularies,
so every query is satisfiable over the synthetic dataset.

The variant counts per family match JOB (4+4+3+...+3 = 113 queries).
"""

from repro.errors import ReproError

# ----------------------------------------------------------------------
# The suite: family number -> {variant letter: SQL}
# ----------------------------------------------------------------------
JOB_FAMILIES = {}


def _family(number, variants):
    if number in JOB_FAMILIES:
        raise ReproError(f"family {number} defined twice")
    JOB_FAMILIES[number] = variants


_family(1, {
    # Q1a is Listing 1 of the paper, verbatim JOB.
    "a": """SELECT MIN(mc.note) AS production_note,
       MIN(t.title) AS movie_title,
       MIN(t.production_year) AS movie_year
FROM company_type AS ct, info_type AS it, movie_companies AS mc,
     movie_info_idx AS mi_idx, title AS t
WHERE ct.kind = 'production companies'
  AND it.info = 'top 250 rank'
  AND mc.note NOT LIKE '%(as Metro-Goldwyn-Mayer Pictures)%'
  AND (mc.note LIKE '%(co-production)%' OR mc.note LIKE '%(presents)%')
  AND ct.id = mc.company_type_id
  AND t.id = mc.movie_id
  AND t.id = mi_idx.movie_id
  AND mc.movie_id = mi_idx.movie_id
  AND it.id = mi_idx.info_type_id""",
    "b": """SELECT MIN(mc.note) AS production_note,
       MIN(t.title) AS movie_title,
       MIN(t.production_year) AS movie_year
FROM company_type AS ct, info_type AS it, movie_companies AS mc,
     movie_info_idx AS mi_idx, title AS t
WHERE ct.kind = 'production companies'
  AND it.info = 'bottom 10 rank'
  AND t.production_year BETWEEN 2005 AND 2010
  AND ct.id = mc.company_type_id
  AND t.id = mc.movie_id
  AND t.id = mi_idx.movie_id
  AND mc.movie_id = mi_idx.movie_id
  AND it.id = mi_idx.info_type_id""",
    "c": """SELECT MIN(mc.note) AS production_note,
       MIN(t.title) AS movie_title,
       MIN(t.production_year) AS movie_year
FROM company_type AS ct, info_type AS it, movie_companies AS mc,
     movie_info_idx AS mi_idx, title AS t
WHERE ct.kind = 'production companies'
  AND it.info = 'top 250 rank'
  AND mc.note LIKE '%(co-production)%'
  AND t.production_year > 2010
  AND ct.id = mc.company_type_id
  AND t.id = mc.movie_id
  AND t.id = mi_idx.movie_id
  AND mc.movie_id = mi_idx.movie_id
  AND it.id = mi_idx.info_type_id""",
    "d": """SELECT MIN(mc.note) AS production_note,
       MIN(t.title) AS movie_title,
       MIN(t.production_year) AS movie_year
FROM company_type AS ct, info_type AS it, movie_companies AS mc,
     movie_info_idx AS mi_idx, title AS t
WHERE ct.kind = 'production companies'
  AND it.info = 'bottom 10 rank'
  AND t.production_year > 2000
  AND ct.id = mc.company_type_id
  AND t.id = mc.movie_id
  AND t.id = mi_idx.movie_id
  AND mc.movie_id = mi_idx.movie_id
  AND it.id = mi_idx.info_type_id""",
})

_family(2, {
    letter: f"""SELECT MIN(t.title) AS movie_title
FROM company_name AS cn, keyword AS k, movie_companies AS mc,
     movie_keyword AS mk, title AS t
WHERE cn.country_code = '{code}'
  AND k.keyword = 'character-name-in-title'
  AND cn.id = mc.company_id
  AND mc.movie_id = t.id
  AND t.id = mk.movie_id
  AND mk.keyword_id = k.id
  AND mc.movie_id = mk.movie_id"""
    for letter, code in
    (("a", "[de]"), ("b", "[nl]"), ("c", "[sm]"), ("d", "[us]"))
})

_family(3, {
    "a": """SELECT MIN(t.title) AS movie_title
FROM keyword AS k, movie_info AS mi, movie_keyword AS mk, title AS t
WHERE k.keyword LIKE '%sequel%'
  AND mi.info IN ('Sweden', 'Norway', 'Germany', 'Denmark', 'Japan')
  AND t.production_year > 2005
  AND t.id = mi.movie_id
  AND t.id = mk.movie_id
  AND mk.movie_id = mi.movie_id
  AND k.id = mk.keyword_id""",
    "b": """SELECT MIN(t.title) AS movie_title
FROM keyword AS k, movie_info AS mi, movie_keyword AS mk, title AS t
WHERE k.keyword LIKE '%sequel%'
  AND mi.info IN ('Bulgaria')
  AND t.production_year > 2010
  AND t.id = mi.movie_id
  AND t.id = mk.movie_id
  AND mk.movie_id = mi.movie_id
  AND k.id = mk.keyword_id""",
    "c": """SELECT MIN(t.title) AS movie_title
FROM keyword AS k, movie_info AS mi, movie_keyword AS mk, title AS t
WHERE k.keyword LIKE '%sequel%'
  AND mi.info IN ('Sweden', 'Norway', 'Germany', 'Denmark', 'USA',
                  'American')
  AND t.production_year > 1990
  AND t.id = mi.movie_id
  AND t.id = mk.movie_id
  AND mk.movie_id = mi.movie_id
  AND k.id = mk.keyword_id""",
})

_family(4, {
    letter: f"""SELECT MIN(mi_idx.info) AS rating, MIN(t.title) AS movie_title
FROM info_type AS it, keyword AS k, movie_info_idx AS mi_idx,
     movie_keyword AS mk, title AS t
WHERE it.info = 'rating'
  AND k.keyword LIKE '%sequel%'
  AND mi_idx.info > '{rating}'
  AND t.production_year > {year}
  AND t.id = mi_idx.movie_id
  AND t.id = mk.movie_id
  AND mk.movie_id = mi_idx.movie_id
  AND k.id = mk.keyword_id
  AND it.id = mi_idx.info_type_id"""
    for letter, rating, year in
    (("a", "5.0", 2005), ("b", "9.0", 2010), ("c", "2.0", 1990))
})

_family(5, {
    "a": """SELECT MIN(t.title) AS typical_european_movie
FROM company_type AS ct, info_type AS it, movie_companies AS mc,
     movie_info AS mi, title AS t
WHERE ct.kind = 'production companies'
  AND mc.note LIKE '%(theatrical)%'
  AND mc.note LIKE '%(USA)%'
  AND mi.info IN ('Sweden', 'Norway', 'Germany', 'Denmark')
  AND t.production_year > 2005
  AND t.id = mi.movie_id
  AND t.id = mc.movie_id
  AND mc.movie_id = mi.movie_id
  AND ct.id = mc.company_type_id
  AND it.id = mi.info_type_id""",
    "b": """SELECT MIN(t.title) AS american_vhs_movie
FROM company_type AS ct, info_type AS it, movie_companies AS mc,
     movie_info AS mi, title AS t
WHERE ct.kind = 'production companies'
  AND mc.note LIKE '%(VHS)%'
  AND mi.info IN ('USA', 'America', 'American')
  AND t.production_year > 2000
  AND t.id = mi.movie_id
  AND t.id = mc.movie_id
  AND mc.movie_id = mi.movie_id
  AND ct.id = mc.company_type_id
  AND it.id = mi.info_type_id""",
    "c": """SELECT MIN(t.title) AS american_movie
FROM company_type AS ct, info_type AS it, movie_companies AS mc,
     movie_info AS mi, title AS t
WHERE ct.kind = 'production companies'
  AND mc.note NOT LIKE '%(TV)%'
  AND mc.note LIKE '%(USA)%'
  AND mi.info IN ('Drama', 'Horror', 'Action', 'Sci-Fi', 'Thriller')
  AND t.production_year > 1990
  AND t.id = mi.movie_id
  AND t.id = mc.movie_id
  AND mc.movie_id = mi.movie_id
  AND ct.id = mc.company_type_id
  AND it.id = mi.info_type_id""",
})

_family(6, {
    letter: f"""SELECT MIN(k.keyword) AS movie_keyword,
       MIN(n.name) AS actor_name, MIN(t.title) AS movie_title
FROM cast_info AS ci, keyword AS k, movie_keyword AS mk, name AS n,
     title AS t
WHERE k.keyword {keyword_pred}
  AND n.name LIKE '{name_like}'
  AND t.production_year > {year}
  AND k.id = mk.keyword_id
  AND t.id = mk.movie_id
  AND t.id = ci.movie_id
  AND ci.movie_id = mk.movie_id
  AND n.id = ci.person_id"""
    for letter, keyword_pred, name_like, year in (
        ("a", "= 'marvel-cinematic-universe'", "%an%", 2010),
        ("b", "LIKE '%based-on-comic%'", "Z%", 2014),
        ("c", "= 'marvel-cinematic-universe'", "X%", 2014),
        ("d", "LIKE '%based-on-comic%'", "%an%", 1950),
        ("e", "= 'marvel-cinematic-universe'", "B%", 2000),
        ("f", "LIKE '%based-on-comic%'", "%or%", 1980),
    )
})

_family(7, {
    letter: f"""SELECT MIN(n.name) AS of_person, MIN(t.title) AS biography_movie
FROM aka_name AS an, cast_info AS ci, info_type AS it, link_type AS lt,
     movie_link AS ml, name AS n, person_info AS pi, title AS t
WHERE an.name LIKE '%a%'
  AND it.info = 'mini biography'
  AND lt.link = '{link}'
  AND n.name_pcode_cf BETWEEN 'A' AND '{hi_code}'
  AND n.gender = 'm'
  AND pi.note = '(source)'
  AND t.production_year BETWEEN {lo} AND {hi}
  AND n.id = an.person_id
  AND n.id = pi.person_id
  AND ci.person_id = n.id
  AND t.id = ci.movie_id
  AND ml.linked_movie_id = t.id
  AND lt.id = ml.link_type_id
  AND it.id = pi.info_type_id"""
    for letter, link, hi_code, lo, hi in (
        ("a", "features", "F", 1980, 1995),
        ("b", "follows", "F", 1980, 1984),
        ("c", "features", "T", 1900, 2010),
    )
})

# Q8c is Listing 3 of the paper; 8d targets 'costume designer' (§5 Exp 6).
_Q8_TEMPLATE = """SELECT MIN(an.name) AS writer_pseudo_name,
       MIN(t.title) AS movie_title
FROM aka_name AS an, cast_info AS ci, company_name AS cn,
     movie_companies AS mc, name AS n, role_type AS rt, title AS t
WHERE cn.country_code = '{code}'
  AND rt.role = '{role}'
  AND {extra}
  AND an.person_id = n.id
  AND n.id = ci.person_id
  AND ci.movie_id = t.id
  AND t.id = mc.movie_id
  AND mc.company_id = cn.id
  AND ci.role_id = rt.id
  AND an.person_id = ci.person_id
  AND ci.movie_id = mc.movie_id"""

_family(8, {
    "a": _Q8_TEMPLATE.format(code="[us]", role="actress",
                             extra="ci.note = '(voice)'"),
    "b": _Q8_TEMPLATE.format(code="[jp]", role="actress",
                             extra="ci.note = '(voice)' "
                                   "AND t.production_year BETWEEN 2006 "
                                   "AND 2007"),
    "c": _Q8_TEMPLATE.format(code="[us]", role="writer",
                             extra="an.name IS NOT NULL"),
    "d": _Q8_TEMPLATE.format(code="[us]", role="costume designer",
                             extra="an.name IS NOT NULL"),
})

_family(9, {
    letter: f"""SELECT MIN(an.name) AS alternative_name,
       MIN(chn.name) AS character_name, MIN(t.title) AS movie
FROM aka_name AS an, char_name AS chn, cast_info AS ci,
     company_name AS cn, movie_companies AS mc, name AS n,
     role_type AS rt, title AS t
WHERE ci.note IN ('(voice)', '(voice: Japanese version)',
                  '(voice) (uncredited)')
  AND cn.country_code = '[us]'
  AND n.gender = 'f'
  AND rt.role = 'actress'
  AND t.production_year BETWEEN {lo} AND {hi}
  AND {extra}
  AND ci.movie_id = t.id
  AND t.id = mc.movie_id
  AND ci.movie_id = mc.movie_id
  AND mc.company_id = cn.id
  AND ci.role_id = rt.id
  AND n.id = ci.person_id
  AND chn.id = ci.person_role_id
  AND an.person_id = n.id
  AND ci.person_id = an.person_id"""
    for letter, lo, hi, extra in (
        ("a", 2005, 2015, "n.name LIKE '%an%'"),
        ("b", 2007, 2010, "n.name LIKE 'Z%'"),
        ("c", 1990, 2018, "n.name LIKE '%an%'"),
        ("d", 1900, 2020, "n.name IS NOT NULL"),
    )
})

_family(10, {
    "a": """SELECT MIN(chn.name) AS uncredited_voiced_character,
       MIN(t.title) AS russian_movie
FROM char_name AS chn, cast_info AS ci, company_name AS cn,
     company_type AS ct, movie_companies AS mc, role_type AS rt,
     title AS t
WHERE ci.note LIKE '%(voice)%'
  AND ci.note LIKE '%(uncredited)%'
  AND cn.country_code = '[ru]'
  AND rt.role = 'actor'
  AND t.production_year > 2005
  AND t.id = mc.movie_id
  AND t.id = ci.movie_id
  AND ci.movie_id = mc.movie_id
  AND chn.id = ci.person_role_id
  AND rt.id = ci.role_id
  AND cn.id = mc.company_id
  AND ct.id = mc.company_type_id""",
    "b": """SELECT MIN(chn.name) AS character_name,
       MIN(t.title) AS russian_mov_with_actor_producer
FROM char_name AS chn, cast_info AS ci, company_name AS cn,
     company_type AS ct, movie_companies AS mc, role_type AS rt,
     title AS t
WHERE ci.note LIKE '%(producer)%'
  AND cn.country_code = '[ru]'
  AND rt.role = 'actor'
  AND t.production_year > 2010
  AND t.id = mc.movie_id
  AND t.id = ci.movie_id
  AND ci.movie_id = mc.movie_id
  AND chn.id = ci.person_role_id
  AND rt.id = ci.role_id
  AND cn.id = mc.company_id
  AND ct.id = mc.company_type_id""",
    "c": """SELECT MIN(chn.name) AS character_name,
       MIN(t.title) AS movie_with_american_producer
FROM char_name AS chn, cast_info AS ci, company_name AS cn,
     company_type AS ct, movie_companies AS mc, role_type AS rt,
     title AS t
WHERE ci.note LIKE '%(producer)%'
  AND cn.country_code = '[us]'
  AND t.production_year > 1990
  AND t.id = mc.movie_id
  AND t.id = ci.movie_id
  AND ci.movie_id = mc.movie_id
  AND chn.id = ci.person_role_id
  AND rt.id = ci.role_id
  AND cn.id = mc.company_id
  AND ct.id = mc.company_type_id""",
})

_family(11, {
    letter: f"""SELECT MIN(cn.name) AS from_company,
       MIN(lt.link) AS movie_link_type, MIN(t.title) AS sequel_movie
FROM company_name AS cn, company_type AS ct, keyword AS k,
     link_type AS lt, movie_companies AS mc, movie_keyword AS mk,
     movie_link AS ml, title AS t
WHERE cn.country_code {cn_pred}
  AND ct.kind = 'production companies'
  AND k.keyword = '{keyword}'
  AND lt.link LIKE '%follow%'
  AND mc.note IS NULL
  AND t.production_year BETWEEN {lo} AND {hi}
  AND lt.id = ml.link_type_id
  AND ml.movie_id = t.id
  AND t.id = mk.movie_id
  AND mk.keyword_id = k.id
  AND t.id = mc.movie_id
  AND mc.company_type_id = ct.id
  AND mc.company_id = cn.id
  AND ml.movie_id = mk.movie_id
  AND mk.movie_id = mc.movie_id"""
    for letter, cn_pred, keyword, lo, hi in (
        ("a", "!= '[pl]'", "sequel", 1950, 2000),
        ("b", "!= '[pl]'", "sequel", 1990, 1995),
        ("c", "!= '[pl]'", "sequel", 1980, 2010),
        ("d", "= '[us]'", "second-part", 1950, 2020),
    )
})

_family(12, {
    letter: f"""SELECT MIN(cn.name) AS movie_company,
       MIN(mi_idx.info) AS rating, MIN(t.title) AS drama_horror_movie
FROM company_name AS cn, company_type AS ct, info_type AS it1,
     info_type AS it2, movie_companies AS mc, movie_info AS mi,
     movie_info_idx AS mi_idx, title AS t
WHERE cn.country_code = '[us]'
  AND ct.kind = 'production companies'
  AND it1.info = 'genres'
  AND it2.info = 'rating'
  AND mi.info IN ({genres})
  AND mi_idx.info > '{rating}'
  AND t.production_year BETWEEN {lo} AND {hi}
  AND t.id = mi.movie_id
  AND t.id = mi_idx.movie_id
  AND mi.info_type_id = it1.id
  AND mi_idx.info_type_id = it2.id
  AND t.id = mc.movie_id
  AND ct.id = mc.company_type_id
  AND cn.id = mc.company_id
  AND mc.movie_id = mi.movie_id
  AND mc.movie_id = mi_idx.movie_id
  AND mi.movie_id = mi_idx.movie_id"""
    for letter, genres, rating, lo, hi in (
        ("a", "'Drama', 'Horror'", "8.0", 2005, 2008),
        ("b", "'Drama', 'Horror', 'Western', 'Family'", "7.0", 2000, 2010),
        ("c", "'Drama', 'Horror', 'Action', 'Sci-Fi', 'Thriller'", "4.0",
         1990, 2018),
    )
})

_family(13, {
    letter: f"""SELECT MIN(mi.info) AS release_date,
       MIN(mi_idx.info) AS rating, MIN(t.title) AS movie
FROM company_name AS cn, company_type AS ct, info_type AS it1,
     info_type AS it2, kind_type AS kt, movie_companies AS mc,
     movie_info AS mi, movie_info_idx AS mi_idx, title AS t
WHERE cn.country_code = '{code}'
  AND ct.kind = 'production companies'
  AND it1.info = 'rating'
  AND it2.info = 'release dates'
  AND kt.kind = '{kind}'
  AND mi.movie_id = t.id
  AND it2.id = mi.info_type_id
  AND kt.id = t.kind_id
  AND mc.movie_id = t.id
  AND cn.id = mc.company_id
  AND ct.id = mc.company_type_id
  AND mi_idx.movie_id = t.id
  AND it1.id = mi_idx.info_type_id
  AND mi.movie_id = mi_idx.movie_id
  AND mi.movie_id = mc.movie_id
  AND mi_idx.movie_id = mc.movie_id"""
    for letter, code, kind in (
        ("a", "[de]", "movie"),
        ("b", "[us]", "movie"),
        ("c", "[us]", "tv movie"),
        ("d", "[gb]", "episode"),
    )
})

_family(14, {
    letter: f"""SELECT MIN(mi_idx.info) AS rating,
       MIN(t.title) AS northern_dark_movie
FROM info_type AS it1, info_type AS it2, keyword AS k,
     kind_type AS kt, movie_info AS mi, movie_info_idx AS mi_idx,
     movie_keyword AS mk, title AS t
WHERE it1.info = 'countries'
  AND it2.info = 'rating'
  AND k.keyword IN ('murder', 'blood', 'violence')
  AND kt.kind = 'movie'
  AND mi.info IN ('Sweden', 'Norway', 'Germany', 'Denmark', 'USA')
  AND mi_idx.info < '{rating}'
  AND t.production_year > {year}
  AND kt.id = t.kind_id
  AND t.id = mi.movie_id
  AND t.id = mk.movie_id
  AND t.id = mi_idx.movie_id
  AND mk.movie_id = mi.movie_id
  AND mk.movie_id = mi_idx.movie_id
  AND mi.movie_id = mi_idx.movie_id
  AND k.id = mk.keyword_id
  AND it1.id = mi.info_type_id
  AND it2.id = mi_idx.info_type_id"""
    for letter, rating, year in
    (("a", "8.5", 2005), ("b", "9.5", 2009), ("c", "9.9", 1990))
})

_family(15, {
    letter: f"""SELECT MIN(mi.info) AS release_date,
       MIN(t.title) AS internet_movie
FROM aka_title AS at, company_name AS cn, company_type AS ct,
     info_type AS it1, movie_companies AS mc, movie_info AS mi,
     title AS t
WHERE cn.country_code = '[us]'
  AND it1.info = 'release dates'
  AND mc.note LIKE '%(USA)%'
  AND mi.info LIKE 'USA:%'
  AND t.production_year > {year}
  AND {extra}
  AND t.id = at.movie_id
  AND t.id = mi.movie_id
  AND t.id = mc.movie_id
  AND mc.movie_id = mi.movie_id
  AND mc.movie_id = at.movie_id
  AND mi.movie_id = at.movie_id
  AND cn.id = mc.company_id
  AND ct.id = mc.company_type_id
  AND it1.id = mi.info_type_id"""
    for letter, year, extra in (
        ("a", 2000, "mc.note LIKE '%(theatrical)%'"),
        ("b", 1990, "mc.note LIKE '%(VHS)%'"),
        ("c", 1980, "mc.note LIKE '%(theatrical)%'"),
        ("d", 1950, "mi.note IS NULL"),
    )
})

_family(16, {
    letter: f"""SELECT MIN(an.name) AS cool_actor_pseudonym,
       MIN(t.title) AS series_named_after_char
FROM aka_name AS an, cast_info AS ci, company_name AS cn,
     keyword AS k, movie_companies AS mc, movie_keyword AS mk,
     name AS n, title AS t
WHERE cn.country_code = '[us]'
  AND k.keyword = 'character-name-in-title'
  AND t.episode_nr BETWEEN {lo} AND {hi}
  AND an.person_id = n.id
  AND n.id = ci.person_id
  AND ci.movie_id = t.id
  AND t.id = mk.movie_id
  AND mk.keyword_id = k.id
  AND t.id = mc.movie_id
  AND mc.company_id = cn.id
  AND an.person_id = ci.person_id
  AND ci.movie_id = mc.movie_id
  AND ci.movie_id = mk.movie_id
  AND mc.movie_id = mk.movie_id"""
    for letter, lo, hi in
    (("a", 50, 100), ("b", 1, 400), ("c", 1, 100), ("d", 5, 300))
})

# Q17b is used in Experiment 1; the family varies n.name predicates.
_family(17, {
    letter: f"""SELECT MIN(n.name) AS member_in_charnamed_movie
FROM cast_info AS ci, company_name AS cn, keyword AS k,
     movie_companies AS mc, movie_keyword AS mk, name AS n, title AS t
WHERE cn.country_code = '[us]'
  AND k.keyword = 'character-name-in-title'
  AND n.name LIKE '{pattern}'
  AND n.id = ci.person_id
  AND ci.movie_id = t.id
  AND t.id = mk.movie_id
  AND mk.keyword_id = k.id
  AND t.id = mc.movie_id
  AND mc.company_id = cn.id
  AND ci.movie_id = mc.movie_id
  AND ci.movie_id = mk.movie_id
  AND mc.movie_id = mk.movie_id"""
    for letter, pattern in (
        ("a", "B%"), ("b", "Z%"), ("c", "X%"), ("d", "%Bel%"),
        ("e", "%an%"), ("f", "%a%"),
    )
})

_family(18, {
    letter: f"""SELECT MIN(mi.info) AS movie_budget,
       MIN(mi_idx.info) AS movie_votes, MIN(t.title) AS movie_title
FROM cast_info AS ci, info_type AS it1, info_type AS it2,
     movie_info AS mi, movie_info_idx AS mi_idx, name AS n, title AS t
WHERE ci.note IN ('(producer)', '(executive producer)')
  AND it1.info = 'budget'
  AND it2.info = 'votes'
  AND n.gender = '{gender}'
  AND n.name LIKE '{pattern}'
  AND t.id = mi.movie_id
  AND t.id = mi_idx.movie_id
  AND t.id = ci.movie_id
  AND ci.movie_id = mi.movie_id
  AND ci.movie_id = mi_idx.movie_id
  AND mi.movie_id = mi_idx.movie_id
  AND n.id = ci.person_id
  AND it1.id = mi.info_type_id
  AND it2.id = mi_idx.info_type_id"""
    for letter, gender, pattern in
    (("a", "m", "%Tor%"), ("b", "m", "B%"), ("c", "f", "%an%"))
})

_family(19, {
    letter: f"""SELECT MIN(n.name) AS voicing_actress,
       MIN(t.title) AS voiced_movie
FROM aka_name AS an, char_name AS chn, cast_info AS ci,
     company_name AS cn, info_type AS it, movie_companies AS mc,
     movie_info AS mi, name AS n, role_type AS rt, title AS t
WHERE ci.note IN ('(voice)', '(voice: Japanese version)',
                  '(voice) (uncredited)')
  AND cn.country_code = '[us]'
  AND it.info = 'release dates'
  AND mi.info LIKE 'USA:%'
  AND n.gender = 'f'
  AND rt.role = 'actress'
  AND t.production_year BETWEEN {lo} AND {hi}
  AND {extra}
  AND t.id = mi.movie_id
  AND t.id = mc.movie_id
  AND t.id = ci.movie_id
  AND mc.movie_id = ci.movie_id
  AND mc.movie_id = mi.movie_id
  AND mi.movie_id = ci.movie_id
  AND cn.id = mc.company_id
  AND it.id = mi.info_type_id
  AND n.id = ci.person_id
  AND rt.id = ci.role_id
  AND n.id = an.person_id
  AND ci.person_id = an.person_id
  AND chn.id = ci.person_role_id"""
    for letter, lo, hi, extra in (
        ("a", 2005, 2009, "n.name LIKE '%An%'"),
        ("b", 2007, 2008, "n.name LIKE 'Z%'"),
        ("c", 1990, 2018, "n.name LIKE '%An%'"),
        ("d", 1900, 2020, "n.name IS NOT NULL"),
    )
})

_family(20, {
    letter: f"""SELECT MIN(t.title) AS complete_downey_ironman_movie
FROM comp_cast_type AS cct1, comp_cast_type AS cct2,
     char_name AS chn, cast_info AS ci, complete_cast AS cc,
     keyword AS k, kind_type AS kt, movie_keyword AS mk,
     name AS n, title AS t
WHERE cct1.kind = 'cast'
  AND cct2.kind LIKE '%complete%'
  AND chn.name LIKE '{chn_pattern}'
  AND k.keyword IN ('superhero', 'marvel-cinematic-universe',
                    'based-on-comic', 'fight')
  AND kt.kind = 'movie'
  AND t.production_year > {year}
  AND kt.id = t.kind_id
  AND t.id = mk.movie_id
  AND t.id = ci.movie_id
  AND t.id = cc.movie_id
  AND mk.movie_id = ci.movie_id
  AND mk.movie_id = cc.movie_id
  AND ci.movie_id = cc.movie_id
  AND chn.id = ci.person_role_id
  AND n.id = ci.person_id
  AND k.id = mk.keyword_id
  AND cct1.id = cc.subject_id
  AND cct2.id = cc.status_id"""
    for letter, chn_pattern, year in
    (("a", "%man%", 1950), ("b", "%an%", 2000), ("c", "X%", 1980))
})

_family(21, {
    letter: f"""SELECT MIN(cn.name) AS company_name,
       MIN(lt.link) AS link_type, MIN(t.title) AS western_follow_up
FROM company_name AS cn, company_type AS ct, keyword AS k,
     link_type AS lt, movie_companies AS mc, movie_info AS mi,
     movie_keyword AS mk, movie_link AS ml, title AS t
WHERE cn.country_code != '[pl]'
  AND ct.kind = 'production companies'
  AND k.keyword = '{keyword}'
  AND lt.link LIKE '%follow%'
  AND mc.note IS NULL
  AND mi.info IN ({infos})
  AND t.production_year BETWEEN {lo} AND {hi}
  AND lt.id = ml.link_type_id
  AND ml.movie_id = t.id
  AND t.id = mk.movie_id
  AND mk.keyword_id = k.id
  AND t.id = mc.movie_id
  AND mc.company_type_id = ct.id
  AND mc.company_id = cn.id
  AND mi.movie_id = t.id
  AND ml.movie_id = mk.movie_id
  AND ml.movie_id = mc.movie_id
  AND mk.movie_id = mc.movie_id
  AND ml.movie_id = mi.movie_id
  AND mk.movie_id = mi.movie_id
  AND mc.movie_id = mi.movie_id"""
    for letter, keyword, infos, lo, hi in (
        ("a", "sequel", "'Sweden', 'Norway', 'Germany', 'Denmark'",
         1950, 2000),
        ("b", "sequel", "'Germany', 'Swedish', 'German'", 2000, 2010),
        ("c", "second-part", "'Sweden', 'Norway', 'Germany', 'Denmark', "
         "'USA', 'American'", 1950, 2010),
    )
})

_family(22, {
    letter: f"""SELECT MIN(cn.name) AS movie_company,
       MIN(mi_idx.info) AS rating, MIN(t.title) AS western_violent_movie
FROM company_name AS cn, company_type AS ct, info_type AS it1,
     info_type AS it2, keyword AS k, kind_type AS kt,
     movie_companies AS mc, movie_info AS mi, movie_info_idx AS mi_idx,
     movie_keyword AS mk, title AS t
WHERE cn.country_code != '[us]'
  AND it1.info = 'countries'
  AND it2.info = 'rating'
  AND k.keyword IN ('murder', 'blood', 'violence')
  AND kt.kind IN ('movie', 'episode')
  AND mc.note NOT LIKE '%(USA)%'
  AND mi.info IN ('Germany', 'Sweden', 'Norway', 'Denmark', 'Japan')
  AND mi_idx.info < '{rating}'
  AND t.production_year > {year}
  AND kt.id = t.kind_id
  AND t.id = mi.movie_id
  AND t.id = mk.movie_id
  AND t.id = mi_idx.movie_id
  AND t.id = mc.movie_id
  AND mk.movie_id = mi.movie_id
  AND mk.movie_id = mi_idx.movie_id
  AND mk.movie_id = mc.movie_id
  AND mi.movie_id = mi_idx.movie_id
  AND mi.movie_id = mc.movie_id
  AND mc.movie_id = mi_idx.movie_id
  AND k.id = mk.keyword_id
  AND it1.id = mi.info_type_id
  AND it2.id = mi_idx.info_type_id
  AND ct.id = mc.company_type_id
  AND cn.id = mc.company_id"""
    for letter, rating, year in (
        ("a", "7.0", 2008), ("b", "7.0", 2009), ("c", "8.5", 2005),
        ("d", "9.5", 1990),
    )
})

_family(23, {
    letter: f"""SELECT MIN(kt.kind) AS movie_kind, MIN(t.title) AS complete_us_movie
FROM complete_cast AS cc, comp_cast_type AS cct1, company_name AS cn,
     company_type AS ct, info_type AS it1, kind_type AS kt,
     movie_companies AS mc, movie_info AS mi, title AS t
WHERE cct1.kind = 'complete+verified'
  AND cn.country_code = '[us]'
  AND it1.info = 'release dates'
  AND kt.kind IN ({kinds})
  AND mi.info LIKE 'USA:%'
  AND t.production_year > {year}
  AND kt.id = t.kind_id
  AND t.id = mi.movie_id
  AND t.id = mc.movie_id
  AND t.id = cc.movie_id
  AND mc.movie_id = mi.movie_id
  AND mc.movie_id = cc.movie_id
  AND mi.movie_id = cc.movie_id
  AND ct.id = mc.company_type_id
  AND cn.id = mc.company_id
  AND it1.id = mi.info_type_id
  AND cct1.id = cc.status_id"""
    for letter, kinds, year in (
        ("a", "'movie'", 2000),
        ("b", "'movie', 'tv movie', 'video movie'", 2005),
        ("c", "'movie', 'tv movie', 'video movie', 'episode'", 1990),
    )
})

_family(24, {
    letter: f"""SELECT MIN(chn.name) AS voiced_char_name,
       MIN(n.name) AS voicing_actress_name,
       MIN(t.title) AS voiced_action_movie
FROM aka_name AS an, char_name AS chn, cast_info AS ci,
     info_type AS it, keyword AS k, movie_info AS mi,
     movie_keyword AS mk, name AS n, role_type AS rt, title AS t
WHERE ci.note IN ('(voice)', '(voice: Japanese version)',
                  '(voice) (uncredited)')
  AND it.info = 'release dates'
  AND k.keyword IN ({keywords})
  AND mi.info LIKE 'USA:%'
  AND n.gender = 'f'
  AND rt.role = 'actress'
  AND t.production_year > {year}
  AND t.id = mi.movie_id
  AND t.id = mk.movie_id
  AND t.id = ci.movie_id
  AND mk.movie_id = ci.movie_id
  AND mk.movie_id = mi.movie_id
  AND mi.movie_id = ci.movie_id
  AND k.id = mk.keyword_id
  AND it.id = mi.info_type_id
  AND n.id = ci.person_id
  AND rt.id = ci.role_id
  AND n.id = an.person_id
  AND ci.person_id = an.person_id
  AND chn.id = ci.person_role_id"""
    for letter, keywords, year in (
        ("a", "'hero', 'martial-arts', 'fight', 'violence'", 2010),
        ("b", "'hero', 'martial-arts', 'fight', 'violence', 'blood'",
         2000),
    )
})

_family(25, {
    letter: f"""SELECT MIN(mi.info) AS movie_budget,
       MIN(mi_idx.info) AS movie_votes, MIN(n.name) AS male_writer,
       MIN(t.title) AS violent_movie_title
FROM cast_info AS ci, info_type AS it1, info_type AS it2,
     keyword AS k, movie_info AS mi, movie_info_idx AS mi_idx,
     movie_keyword AS mk, name AS n, title AS t
WHERE ci.note IN ('(writer)', '(head writer)', '(written by)',
                  '(story)')
  AND it1.info = 'genres'
  AND it2.info = 'votes'
  AND k.keyword IN ({keywords})
  AND mi.info IN ({genres})
  AND n.gender = 'm'
  AND t.id = mi.movie_id
  AND t.id = mi_idx.movie_id
  AND t.id = ci.movie_id
  AND t.id = mk.movie_id
  AND ci.movie_id = mi.movie_id
  AND ci.movie_id = mi_idx.movie_id
  AND ci.movie_id = mk.movie_id
  AND mi.movie_id = mi_idx.movie_id
  AND mi.movie_id = mk.movie_id
  AND mi_idx.movie_id = mk.movie_id
  AND n.id = ci.person_id
  AND it1.id = mi.info_type_id
  AND it2.id = mi_idx.info_type_id
  AND k.id = mk.keyword_id"""
    for letter, keywords, genres in (
        ("a", "'murder', 'blood', 'gore', 'death'", "'Horror'"),
        ("b", "'murder', 'blood', 'violence'", "'Horror', 'Thriller'"),
        ("c", "'murder', 'violence', 'blood', 'fight'",
         "'Horror', 'Action', 'Sci-Fi', 'Thriller', 'Crime', 'War'"),
    )
})

_family(26, {
    letter: f"""SELECT MIN(chn.name) AS character_name,
       MIN(mi_idx.info) AS rating, MIN(t.title) AS complete_hero_movie
FROM complete_cast AS cc, comp_cast_type AS cct1, char_name AS chn,
     cast_info AS ci, info_type AS it2, keyword AS k,
     kind_type AS kt, movie_info_idx AS mi_idx, movie_keyword AS mk,
     name AS n, title AS t
WHERE cct1.kind = 'cast'
  AND chn.name IS NOT NULL
  AND it2.info = 'rating'
  AND k.keyword IN ('superhero', 'marvel-cinematic-universe',
                    'based-on-comic', 'fight')
  AND kt.kind = 'movie'
  AND mi_idx.info > '{rating}'
  AND t.production_year > {year}
  AND kt.id = t.kind_id
  AND t.id = mk.movie_id
  AND t.id = ci.movie_id
  AND t.id = cc.movie_id
  AND t.id = mi_idx.movie_id
  AND mk.movie_id = ci.movie_id
  AND mk.movie_id = cc.movie_id
  AND mk.movie_id = mi_idx.movie_id
  AND ci.movie_id = cc.movie_id
  AND ci.movie_id = mi_idx.movie_id
  AND cc.movie_id = mi_idx.movie_id
  AND chn.id = ci.person_role_id
  AND n.id = ci.person_id
  AND k.id = mk.keyword_id
  AND cct1.id = cc.subject_id
  AND it2.id = mi_idx.info_type_id"""
    for letter, rating, year in
    (("a", "7.0", 2000), ("b", "8.0", 2005), ("c", "6.0", 1980))
})

_family(27, {
    letter: f"""SELECT MIN(cn.name) AS producing_company,
       MIN(lt.link) AS link_type, MIN(t.title) AS complete_western_sequel
FROM complete_cast AS cc, comp_cast_type AS cct1,
     comp_cast_type AS cct2, company_name AS cn, company_type AS ct,
     keyword AS k, link_type AS lt, movie_companies AS mc,
     movie_info AS mi, movie_keyword AS mk, movie_link AS ml, title AS t
WHERE cct1.kind IN ('cast', 'crew')
  AND cct2.kind = 'complete'
  AND cn.country_code != '[pl]'
  AND ct.kind = 'production companies'
  AND k.keyword = 'sequel'
  AND lt.link LIKE '%follow%'
  AND mc.note IS NULL
  AND mi.info IN ({infos})
  AND t.production_year BETWEEN {lo} AND {hi}
  AND lt.id = ml.link_type_id
  AND ml.movie_id = t.id
  AND t.id = mk.movie_id
  AND mk.keyword_id = k.id
  AND t.id = mc.movie_id
  AND mc.company_type_id = ct.id
  AND mc.company_id = cn.id
  AND mi.movie_id = t.id
  AND t.id = cc.movie_id
  AND cct1.id = cc.subject_id
  AND cct2.id = cc.status_id
  AND ml.movie_id = mk.movie_id
  AND ml.movie_id = mc.movie_id
  AND mk.movie_id = mc.movie_id
  AND ml.movie_id = mi.movie_id
  AND ml.movie_id = cc.movie_id"""
    for letter, infos, lo, hi in (
        ("a", "'Sweden', 'Germany', 'Swedish', 'German'", 1950, 2000),
        ("b", "'Sweden', 'Germany', 'Swedish', 'German'", 1950, 2010),
        ("c", "'Sweden', 'Norway', 'Germany', 'Denmark', 'USA', "
         "'American'", 1950, 2010),
    )
})

_family(28, {
    letter: f"""SELECT MIN(cn.name) AS movie_company,
       MIN(mi_idx.info) AS rating, MIN(t.title) AS complete_euro_dark_movie
FROM complete_cast AS cc, comp_cast_type AS cct1,
     comp_cast_type AS cct2, company_name AS cn, company_type AS ct,
     info_type AS it1, info_type AS it2, keyword AS k,
     kind_type AS kt, movie_companies AS mc, movie_info AS mi,
     movie_info_idx AS mi_idx, movie_keyword AS mk, title AS t
WHERE cct1.kind = 'crew'
  AND cct2.kind != 'complete+verified'
  AND cn.country_code != '[us]'
  AND it1.info = 'countries'
  AND it2.info = 'rating'
  AND k.keyword IN ('murder', 'blood', 'violence')
  AND kt.kind IN ('movie', 'episode')
  AND mc.note NOT LIKE '%(USA)%'
  AND mi.info IN ('Sweden', 'Germany', 'Denmark', 'Japan')
  AND mi_idx.info < '{rating}'
  AND t.production_year > {year}
  AND kt.id = t.kind_id
  AND t.id = mi.movie_id
  AND t.id = mk.movie_id
  AND t.id = mi_idx.movie_id
  AND t.id = mc.movie_id
  AND t.id = cc.movie_id
  AND mk.movie_id = mi.movie_id
  AND mk.movie_id = mi_idx.movie_id
  AND mk.movie_id = mc.movie_id
  AND mi.movie_id = mi_idx.movie_id
  AND mi.movie_id = mc.movie_id
  AND mc.movie_id = mi_idx.movie_id
  AND k.id = mk.keyword_id
  AND it1.id = mi.info_type_id
  AND it2.id = mi_idx.info_type_id
  AND ct.id = mc.company_type_id
  AND cn.id = mc.company_id
  AND cct1.id = cc.subject_id
  AND cct2.id = cc.status_id"""
    for letter, rating, year in
    (("a", "8.5", 2000), ("b", "9.0", 2005), ("c", "9.5", 1990))
})

_family(29, {
    letter: f"""SELECT MIN(chn.name) AS voiced_char,
       MIN(n.name) AS voicing_actress, MIN(t.title) AS voiced_animation
FROM aka_name AS an, complete_cast AS cc, comp_cast_type AS cct1,
     comp_cast_type AS cct2, char_name AS chn, cast_info AS ci,
     company_name AS cn, info_type AS it, info_type AS it3,
     keyword AS k, movie_companies AS mc, movie_info AS mi,
     movie_keyword AS mk, name AS n, person_info AS pi,
     role_type AS rt, title AS t
WHERE cct1.kind = 'cast'
  AND cct2.kind = 'complete+verified'
  AND ci.note = '(voice)'
  AND cn.country_code = '[us]'
  AND it.info = 'release dates'
  AND it3.info = 'trivia'
  AND k.keyword = '{keyword}'
  AND mi.info LIKE 'USA:%'
  AND n.gender = 'f'
  AND rt.role = 'actress'
  AND t.production_year BETWEEN {lo} AND {hi}
  AND t.id = mi.movie_id
  AND t.id = mc.movie_id
  AND t.id = ci.movie_id
  AND t.id = mk.movie_id
  AND t.id = cc.movie_id
  AND mc.movie_id = ci.movie_id
  AND mc.movie_id = mi.movie_id
  AND mc.movie_id = mk.movie_id
  AND mc.movie_id = cc.movie_id
  AND mi.movie_id = ci.movie_id
  AND mi.movie_id = mk.movie_id
  AND mi.movie_id = cc.movie_id
  AND ci.movie_id = mk.movie_id
  AND ci.movie_id = cc.movie_id
  AND mk.movie_id = cc.movie_id
  AND cn.id = mc.company_id
  AND it.id = mi.info_type_id
  AND n.id = ci.person_id
  AND rt.id = ci.role_id
  AND n.id = an.person_id
  AND ci.person_id = an.person_id
  AND chn.id = ci.person_role_id
  AND n.id = pi.person_id
  AND ci.person_id = pi.person_id
  AND it3.id = pi.info_type_id
  AND k.id = mk.keyword_id
  AND cct1.id = cc.subject_id
  AND cct2.id = cc.status_id"""
    for letter, keyword, lo, hi in (
        ("a", "superhero", 2000, 2010),
        ("b", "superhero", 2007, 2010),
        ("c", "fight", 1950, 2018),
    )
})

_family(30, {
    letter: f"""SELECT MIN(mi.info) AS movie_budget,
       MIN(mi_idx.info) AS movie_votes, MIN(n.name) AS writer,
       MIN(t.title) AS complete_violent_movie
FROM complete_cast AS cc, comp_cast_type AS cct1,
     comp_cast_type AS cct2, cast_info AS ci, info_type AS it1,
     info_type AS it2, keyword AS k, movie_info AS mi,
     movie_info_idx AS mi_idx, movie_keyword AS mk, name AS n,
     title AS t
WHERE cct1.kind IN ('cast', 'crew')
  AND cct2.kind = 'complete+verified'
  AND ci.note IN ('(writer)', '(head writer)', '(written by)',
                  '(story)')
  AND it1.info = 'genres'
  AND it2.info = 'votes'
  AND k.keyword IN ('murder', 'violence', 'blood')
  AND mi.info IN ({genres})
  AND n.gender = 'm'
  AND t.production_year > {year}
  AND t.id = mi.movie_id
  AND t.id = mi_idx.movie_id
  AND t.id = ci.movie_id
  AND t.id = mk.movie_id
  AND t.id = cc.movie_id
  AND ci.movie_id = mi.movie_id
  AND ci.movie_id = mi_idx.movie_id
  AND ci.movie_id = mk.movie_id
  AND ci.movie_id = cc.movie_id
  AND mi.movie_id = mi_idx.movie_id
  AND mi.movie_id = mk.movie_id
  AND mi.movie_id = cc.movie_id
  AND mi_idx.movie_id = mk.movie_id
  AND mi_idx.movie_id = cc.movie_id
  AND mk.movie_id = cc.movie_id
  AND n.id = ci.person_id
  AND it1.id = mi.info_type_id
  AND it2.id = mi_idx.info_type_id
  AND k.id = mk.keyword_id
  AND cct1.id = cc.subject_id
  AND cct2.id = cc.status_id"""
    for letter, genres, year in (
        ("a", "'Horror', 'Thriller'", 2000),
        ("b", "'Horror'", 2005),
        ("c", "'Horror', 'Action', 'Sci-Fi', 'Thriller', 'Crime', 'War'",
         1950),
    )
})

_family(31, {
    letter: f"""SELECT MIN(mi.info) AS movie_budget,
       MIN(mi_idx.info) AS movie_votes, MIN(n.name) AS writer,
       MIN(t.title) AS violent_liongate_movie
FROM cast_info AS ci, company_name AS cn, info_type AS it1,
     info_type AS it2, keyword AS k, movie_companies AS mc,
     movie_info AS mi, movie_info_idx AS mi_idx, movie_keyword AS mk,
     name AS n, title AS t
WHERE ci.note IN ('(writer)', '(head writer)', '(written by)',
                  '(story)')
  AND cn.name LIKE '%Film%'
  AND it1.info = 'genres'
  AND it2.info = 'votes'
  AND k.keyword IN ('murder', 'violence', 'blood')
  AND mi.info IN ({genres})
  AND n.gender = '{gender}'
  AND t.id = mi.movie_id
  AND t.id = mi_idx.movie_id
  AND t.id = ci.movie_id
  AND t.id = mk.movie_id
  AND t.id = mc.movie_id
  AND ci.movie_id = mi.movie_id
  AND ci.movie_id = mi_idx.movie_id
  AND ci.movie_id = mk.movie_id
  AND ci.movie_id = mc.movie_id
  AND mi.movie_id = mi_idx.movie_id
  AND mi.movie_id = mk.movie_id
  AND mi.movie_id = mc.movie_id
  AND mi_idx.movie_id = mk.movie_id
  AND mi_idx.movie_id = mc.movie_id
  AND mk.movie_id = mc.movie_id
  AND n.id = ci.person_id
  AND it1.id = mi.info_type_id
  AND it2.id = mi_idx.info_type_id
  AND k.id = mk.keyword_id
  AND cn.id = mc.company_id"""
    for letter, genres, gender in (
        ("a", "'Horror', 'Thriller'", "m"),
        ("b", "'Horror'", "m"),
        ("c", "'Horror', 'Action', 'Sci-Fi', 'Thriller', 'Crime', 'War'",
         "f"),
    )
})

# Q32b is used in Experiment 1.
_family(32, {
    letter: f"""SELECT MIN(lt.link) AS link_type,
       MIN(t1.title) AS first_movie, MIN(t2.title) AS second_movie
FROM keyword AS k, link_type AS lt, movie_keyword AS mk,
     movie_link AS ml, title AS t1, title AS t2
WHERE k.keyword = '{keyword}'
  AND mk.keyword_id = k.id
  AND t1.id = mk.movie_id
  AND ml.movie_id = t1.id
  AND ml.linked_movie_id = t2.id
  AND lt.id = ml.link_type_id
  AND mk.movie_id = t1.id"""
    for letter, keyword in
    (("a", "10,000-mile-club"), ("b", "character-name-in-title"))
})

_family(33, {
    letter: f"""SELECT MIN(cn1.name) AS first_company,
       MIN(cn2.name) AS second_company,
       MIN(mi_idx1.info) AS first_rating,
       MIN(mi_idx2.info) AS second_rating,
       MIN(t1.title) AS first_movie, MIN(t2.title) AS second_movie
FROM company_name AS cn1, company_name AS cn2, info_type AS it1,
     info_type AS it2, kind_type AS kt1, kind_type AS kt2,
     link_type AS lt, movie_companies AS mc1, movie_companies AS mc2,
     movie_info_idx AS mi_idx1, movie_info_idx AS mi_idx2,
     movie_link AS ml, title AS t1, title AS t2
WHERE cn1.country_code != '[us]'
  AND it1.info = 'rating'
  AND it2.info = 'rating'
  AND kt1.kind IN ('tv series', 'episode')
  AND kt2.kind IN ('tv series', 'episode')
  AND lt.link IN ({links})
  AND mi_idx2.info < '{rating}'
  AND t2.production_year BETWEEN {lo} AND {hi}
  AND lt.id = ml.link_type_id
  AND t1.id = ml.movie_id
  AND t2.id = ml.linked_movie_id
  AND it1.id = mi_idx1.info_type_id
  AND t1.id = mi_idx1.movie_id
  AND kt1.id = t1.kind_id
  AND cn1.id = mc1.company_id
  AND t1.id = mc1.movie_id
  AND ml.movie_id = mi_idx1.movie_id
  AND ml.movie_id = mc1.movie_id
  AND mi_idx1.movie_id = mc1.movie_id
  AND it2.id = mi_idx2.info_type_id
  AND t2.id = mi_idx2.movie_id
  AND kt2.id = t2.kind_id
  AND cn2.id = mc2.company_id
  AND t2.id = mc2.movie_id
  AND ml.linked_movie_id = mi_idx2.movie_id
  AND ml.linked_movie_id = mc2.movie_id
  AND mi_idx2.movie_id = mc2.movie_id"""
    for letter, links, rating, lo, hi in (
        ("a", "'sequel', 'follows', 'followed by'", "3.5", 2005, 2008),
        ("b", "'sequel', 'follows', 'followed by'", "3.5", 2005, 2010),
        ("c", "'sequel', 'follows', 'followed by', 'remake of'", "3.5",
         1950, 2010),
    )
})

# The Listing-2 query (Experiments 4/5): a join on non-indexed columns.
LISTING2_FULL_PROJECTION = """SELECT *
FROM movie_keyword AS movie_keyword, movie_link AS movie_link
WHERE movie_link.id <= 10000
  AND movie_keyword.movie_id = movie_link.movie_id"""

LISTING2_LIMITED_PROJECTION = """SELECT movie_keyword.keyword_id,
       movie_link.linked_movie_id
FROM movie_keyword AS movie_keyword, movie_link AS movie_link
WHERE movie_link.id <= 10000
  AND movie_keyword.movie_id = movie_link.movie_id"""


# ----------------------------------------------------------------------
# Access helpers
# ----------------------------------------------------------------------
def query(name):
    """Look up one query by its JOB name, e.g. ``'8c'`` or ``'17b'``."""
    number = int("".join(ch for ch in name if ch.isdigit()))
    letter = "".join(ch for ch in name if ch.isalpha())
    try:
        return JOB_FAMILIES[number][letter]
    except KeyError:
        raise ReproError(f"no JOB query {name!r}") from None


def queries_in_family(number):
    """{variant letter: SQL} for one family."""
    try:
        return dict(JOB_FAMILIES[number])
    except KeyError:
        raise ReproError(f"no JOB family {number}") from None


def all_queries():
    """All queries as {name: SQL}, e.g. {'1a': ..., ..., '33c': ...}."""
    result = {}
    for number in sorted(JOB_FAMILIES):
        for letter in sorted(JOB_FAMILIES[number]):
            result[f"{number}{letter}"] = JOB_FAMILIES[number][letter]
    return result


def family_numbers():
    """Sorted family numbers (1..33)."""
    return sorted(JOB_FAMILIES)
