"""The 21 JOB/IMDB table schemas.

Column sets follow the IMDB schema JOB uses, trimmed to the columns the
benchmark actually touches, with the paper's fixed-width encoding (§5):
4-byte integers and CHAR(n) values padded/trimmed to fixed byte lengths.
Secondary indexes mirror the foreign-key indexes MyRocks would maintain
(JOB's standard index set).
"""

from repro.relational.schema import TableSchema, char_col, int_col

#: All 21 JOB table names, in a stable order.
JOB_TABLE_NAMES = [
    "aka_name",
    "aka_title",
    "cast_info",
    "char_name",
    "comp_cast_type",
    "company_name",
    "company_type",
    "complete_cast",
    "info_type",
    "keyword",
    "kind_type",
    "link_type",
    "movie_companies",
    "movie_info",
    "movie_info_idx",
    "movie_keyword",
    "movie_link",
    "name",
    "person_info",
    "role_type",
    "title",
]


def imdb_schemas(secondary_indexes=True):
    """Build the 21 table schemas.

    ``secondary_indexes=False`` drops all secondary indexes (Experiments
    4/5 compare index-less NDP joins against indexed ones).
    """
    def idx(*columns):
        return tuple(columns) if secondary_indexes else ()

    return [
        TableSchema(
            "aka_name",
            (int_col("id", False), int_col("person_id"),
             char_col("name", 32), char_col("name_pcode_cf", 8),
             char_col("name_pcode_nf", 8)),
            "id", idx("person_id")),
        TableSchema(
            "aka_title",
            (int_col("id", False), int_col("movie_id"),
             char_col("title", 32), int_col("kind_id"),
             int_col("production_year")),
            "id", idx("movie_id")),
        TableSchema(
            "cast_info",
            (int_col("id", False), int_col("person_id"),
             int_col("movie_id"), int_col("person_role_id"),
             char_col("note", 32), int_col("nr_order"),
             int_col("role_id")),
            "id", idx("person_id", "movie_id", "role_id")),
        TableSchema(
            "char_name",
            (int_col("id", False), char_col("name", 32),
             char_col("name_pcode_nf", 8)),
            "id", ()),
        TableSchema(
            "comp_cast_type",
            (int_col("id", False), char_col("kind", 20)),
            "id", ()),
        TableSchema(
            "company_name",
            (int_col("id", False), char_col("name", 32),
             char_col("country_code", 8), char_col("name_pcode_sf", 8)),
            "id", ()),
        TableSchema(
            "company_type",
            (int_col("id", False), char_col("kind", 28)),
            "id", ()),
        TableSchema(
            "complete_cast",
            (int_col("id", False), int_col("movie_id"),
             int_col("subject_id"), int_col("status_id")),
            "id", idx("movie_id")),
        TableSchema(
            "info_type",
            (int_col("id", False), char_col("info", 24)),
            "id", ()),
        TableSchema(
            "keyword",
            (int_col("id", False), char_col("keyword", 28),
             char_col("phonetic_code", 8)),
            "id", ()),
        TableSchema(
            "kind_type",
            (int_col("id", False), char_col("kind", 16)),
            "id", ()),
        TableSchema(
            "link_type",
            (int_col("id", False), char_col("link", 20)),
            "id", ()),
        TableSchema(
            "movie_companies",
            (int_col("id", False), int_col("movie_id"),
             int_col("company_id"), int_col("company_type_id"),
             char_col("note", 44)),
            "id", idx("movie_id", "company_id", "company_type_id")),
        TableSchema(
            "movie_info",
            (int_col("id", False), int_col("movie_id"),
             int_col("info_type_id"), char_col("info", 24),
             char_col("note", 20)),
            "id", idx("movie_id", "info_type_id")),
        TableSchema(
            "movie_info_idx",
            (int_col("id", False), int_col("movie_id"),
             int_col("info_type_id"), char_col("info", 12)),
            "id", idx("movie_id", "info_type_id")),
        TableSchema(
            "movie_keyword",
            (int_col("id", False), int_col("movie_id"),
             int_col("keyword_id")),
            "id", idx("movie_id", "keyword_id")),
        TableSchema(
            "movie_link",
            (int_col("id", False), int_col("movie_id"),
             int_col("linked_movie_id"), int_col("link_type_id")),
            "id", idx("movie_id", "link_type_id")),
        TableSchema(
            "name",
            (int_col("id", False), char_col("name", 32),
             char_col("imdb_index", 4), char_col("gender", 4),
             char_col("name_pcode_cf", 8)),
            "id", ()),
        TableSchema(
            "person_info",
            (int_col("id", False), int_col("person_id"),
             int_col("info_type_id"), char_col("info", 28),
             char_col("note", 20)),
            "id", idx("person_id", "info_type_id")),
        TableSchema(
            "role_type",
            (int_col("id", False), char_col("role", 20)),
            "id", ()),
        TableSchema(
            "title",
            (int_col("id", False), char_col("title", 32),
             char_col("imdb_index", 4), int_col("kind_id"),
             int_col("production_year"), int_col("episode_nr")),
            "id", idx("kind_id", "production_year")),
    ]


#: Relative row counts of the real IMDB dump JOB uses (scale = 1.0).
BASE_ROW_COUNTS = {
    "aka_name": 901_343,
    "aka_title": 361_472,
    "cast_info": 36_244_344,
    "char_name": 3_140_339,
    "comp_cast_type": 4,
    "company_name": 234_997,
    "company_type": 4,
    "complete_cast": 135_086,
    "info_type": 113,
    "keyword": 134_170,
    "kind_type": 7,
    "link_type": 18,
    "movie_companies": 2_609_129,
    "movie_info": 14_835_720,
    "movie_info_idx": 1_380_035,
    "movie_keyword": 4_523_930,
    "movie_link": 29_997,
    "name": 4_167_491,
    "person_info": 2_963_664,
    "role_type": 12,
    "title": 2_528_312,
}

#: Dimension tables that keep their real cardinality at any scale.
FIXED_SIZE_TABLES = {
    "comp_cast_type", "company_type", "info_type", "kind_type",
    "link_type", "role_type",
}
