"""Seeded synthetic IMDB generator.

Generates the 21 JOB tables at a configurable scale factor with the
value vocabularies the JOB queries filter on (genres, country codes,
role names, keyword strings, company notes...), foreign keys with
zipf-like popularity skew, and NULLs where IMDB has them.  Everything is
driven by one seed, so datasets are fully reproducible.
"""

import random
from dataclasses import dataclass

from repro.errors import ReproError
from repro.workloads.imdb_schema import (BASE_ROW_COUNTS, FIXED_SIZE_TABLES,
                                         JOB_TABLE_NAMES)

# ----------------------------------------------------------------------
# Vocabularies (the constants JOB queries select on)
# ----------------------------------------------------------------------
KIND_TYPES = ["movie", "tv movie", "video movie", "video game", "episode",
              "tv series", "tv mini series"]

COMPANY_TYPES = ["production companies", "distributors",
                 "special effects companies", "miscellaneous companies"]

COMP_CAST_TYPES = ["cast", "crew", "complete", "complete+verified"]

ROLE_TYPES = ["actor", "actress", "producer", "writer", "cinematographer",
              "composer", "costume designer", "director", "editor",
              "miscellaneous crew", "production designer", "guest"]

LINK_TYPES = ["sequel", "follows", "followed by", "remake of", "remade as",
              "references", "referenced in", "spoofs", "spoofed in",
              "features", "featured in", "spin off from", "spin off",
              "version of", "similar to", "edited into", "edited from",
              "alternate language"]

_NAMED_INFO_TYPES = ["top 250 rank", "bottom 10 rank", "genres", "rating",
                     "release dates", "budget", "votes", "countries",
                     "languages", "runtimes", "color info", "certificates",
                     "sound mix", "gross", "opening weekend", "trivia",
                     "goofs", "height", "biography", "birth date",
                     "birth notes", "mini biography"]
INFO_TYPES = _NAMED_INFO_TYPES + [
    f"info type {i}" for i in range(len(_NAMED_INFO_TYPES), 113)]

_NAMED_KEYWORDS = ["character-name-in-title", "10,000-mile-club",
                   "marvel-cinematic-universe", "superhero", "sequel",
                   "second-part", "based-on-novel", "based-on-comic",
                   "based-on-comic-book", "fight", "violence", "blood",
                   "murder", "female-nudity", "hospital", "martial-arts",
                   "kung-fu-master", "magnet", "web", "claw", "laser",
                   "superhero-movie", "revenge", "vengeance", "super-power",
                   "suspense", "tv-special", "number-in-title"]

COUNTRY_CODES = ["[us]", "[gb]", "[de]", "[fr]", "[it]", "[jp]", "[nl]",
                 "[es]", "[se]", "[pl]", "[au]", "[ca]", "[sm]", "[ru]"]
_COUNTRY_WEIGHTS = [40, 12, 8, 7, 6, 6, 3, 3, 3, 2, 3, 4, 1, 2]

MC_NOTES = [None, "(co-production)", "(presents)",
            "(as Metro-Goldwyn-Mayer Pictures)",
            "(as Warner Bros. Pictures)", "(2006) (USA) (TV)",
            "(2012) (worldwide) (all media)", "(USA) (theatrical)",
            "(VHS)", "(video)", "(1994) (worldwide) (theatrical)"]
_MC_NOTE_WEIGHTS = [30, 12, 12, 5, 5, 8, 8, 8, 6, 4, 2]

CI_NOTES = [None, "(voice)", "(voice: Japanese version)",
            "(voice) (uncredited)", "(writer)", "(head writer)",
            "(written by)", "(story)", "(producer)",
            "(executive producer)", "(uncredited)", "(archive footage)"]
_CI_NOTE_WEIGHTS = [45, 8, 3, 3, 6, 3, 5, 4, 7, 6, 6, 4]

GENRES = ["Drama", "Comedy", "Horror", "Action", "Thriller", "Documentary",
          "Sci-Fi", "Romance", "Adventure", "Crime", "Western", "Musical",
          "Animation", "Family", "Mystery", "War", "Fantasy", "History",
          "Sport", "Short"]

MI_COUNTRIES = ["USA", "Germany", "Sweden", "Norway", "Denmark", "Japan",
                "American", "Bulgaria", "France", "Italy", "UK", "Canada",
                "Spain", "Finland", "Poland", "Australia"]

LANGUAGES = ["English", "German", "Swedish", "Japanese", "French",
             "Italian", "Spanish", "Danish", "Norwegian", "Polish"]

_NAME_SYLLABLES = ["an", "bel", "cor", "dan", "el", "far", "gul", "han",
                   "il", "jor", "kas", "lor", "mar", "nor", "ol", "pet",
                   "qua", "ros", "son", "tor", "ul", "van", "wil", "xu",
                   "yor", "zan"]
_TITLE_WORDS = ["Shadow", "River", "Champion", "Night", "Return", "Dream",
                "Secret", "Golden", "Last", "Dark", "Money", "Freedom",
                "Winter", "Summer", "Glory", "Stone", "Fire", "Island",
                "Crown", "Empire", "Voyage", "Legend"]


@dataclass(frozen=True)
class DatasetSpec:
    """How much data to generate and how.

    ``table_overrides`` pins absolute row counts for named tables —
    e.g. Experiments 4/5 need a movie_link large enough that the
    BNL-vs-BNLI regime matches the paper's (the real query selects
    10 000 of its rows).
    """

    scale: float = 0.0005
    seed: int = 7
    min_rows: int = 8       # floor for scaled tables
    table_overrides: tuple = ()    # ((table_name, rows), ...)

    def __post_init__(self):
        if self.scale <= 0:
            raise ReproError("scale must be positive")
        for name, rows in self.table_overrides:
            if name not in BASE_ROW_COUNTS:
                raise ReproError(f"unknown table override {name!r}")
            if rows <= 0:
                raise ReproError(f"override for {name!r} must be positive")

    def rows_for(self, table_name):
        """Row count of one table at this scale."""
        for name, rows in self.table_overrides:
            if name == table_name:
                return rows
        base = BASE_ROW_COUNTS[table_name]
        if table_name in FIXED_SIZE_TABLES:
            return base
        return max(self.min_rows, int(base * self.scale))


def _skewed_id(rng, n, exponent=2.2):
    """A 1..n id with zipf-like popularity skew toward small ids."""
    return min(n, int(n * rng.random() ** exponent) + 1)


def _person_name(rng, surname_initials="ABCDEFGHIJKLMNOPRSTVWXZ"):
    surname = (rng.choice(surname_initials)
               + "".join(rng.choice(_NAME_SYLLABLES)
                         for _ in range(rng.randint(1, 2))))
    given = rng.choice(_NAME_SYLLABLES).capitalize() + rng.choice(
        _NAME_SYLLABLES)
    return f"{surname}, {given}"


def _movie_title(rng):
    words = rng.sample(_TITLE_WORDS, rng.randint(1, 3))
    return " ".join(words)


def _production_year(rng):
    # Skewed to recent decades, like IMDB.
    return 1880 + int(140 * (rng.random() ** 0.45))


def _pcode(rng):
    return (rng.choice("ABCDKLMNPRST")
            + "".join(rng.choice("123456") for _ in range(3)))


class DatasetGenerator:
    """Generates all 21 tables for one :class:`DatasetSpec`."""

    def __init__(self, spec):
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self.n_titles = spec.rows_for("title")
        self.n_names = spec.rows_for("name")
        self.n_companies = spec.rows_for("company_name")
        self.n_keywords = spec.rows_for("keyword")
        self.n_chars = spec.rows_for("char_name")

    # ------------------------------------------------------------------
    # Dimension tables
    # ------------------------------------------------------------------
    def gen_kind_type(self):
        return [{"id": i + 1, "kind": kind}
                for i, kind in enumerate(KIND_TYPES)]

    def gen_company_type(self):
        return [{"id": i + 1, "kind": kind}
                for i, kind in enumerate(COMPANY_TYPES)]

    def gen_comp_cast_type(self):
        return [{"id": i + 1, "kind": kind}
                for i, kind in enumerate(COMP_CAST_TYPES)]

    def gen_role_type(self):
        return [{"id": i + 1, "role": role}
                for i, role in enumerate(ROLE_TYPES)]

    def gen_link_type(self):
        return [{"id": i + 1, "link": link}
                for i, link in enumerate(LINK_TYPES)]

    def gen_info_type(self):
        return [{"id": i + 1, "info": info}
                for i, info in enumerate(INFO_TYPES)]

    # ------------------------------------------------------------------
    # Entity tables
    # ------------------------------------------------------------------
    def gen_title(self):
        rng = random.Random(self.spec.seed + 11)
        rows = []
        for i in range(1, self.n_titles + 1):
            rows.append({
                "id": i,
                "title": _movie_title(rng),
                "imdb_index": rng.choice([None, None, None, "I", "II"]),
                "kind_id": rng.choices(
                    range(1, len(KIND_TYPES) + 1),
                    weights=[46, 8, 6, 4, 24, 9, 3])[0],
                "production_year": _production_year(rng),
                "episode_nr": (rng.randint(1, 400)
                               if rng.random() < 0.2 else None),
            })
        return rows

    def gen_name(self):
        rng = random.Random(self.spec.seed + 13)
        rows = []
        for i in range(1, self.n_names + 1):
            rows.append({
                "id": i,
                "name": _person_name(rng),
                "imdb_index": rng.choice([None] * 8 + ["I", "II"]),
                "gender": rng.choices(["m", "f", None],
                                      weights=[55, 35, 10])[0],
                "name_pcode_cf": _pcode(rng),
            })
        return rows

    def gen_char_name(self):
        rng = random.Random(self.spec.seed + 17)
        return [{
            "id": i,
            "name": _person_name(rng, surname_initials="ABCDEFGHIKLMNTXZ"),
            "name_pcode_nf": _pcode(rng),
        } for i in range(1, self.n_chars + 1)]

    def gen_company_name(self):
        rng = random.Random(self.spec.seed + 19)
        rows = []
        for i in range(1, self.n_companies + 1):
            code = rng.choices(COUNTRY_CODES + [None],
                               weights=_COUNTRY_WEIGHTS + [5])[0]
            suffix = rng.choice(["Pictures", "Films", "Studio",
                                 "Entertainment", "Productions", "Film"])
            rows.append({
                "id": i,
                "name": f"{rng.choice(_TITLE_WORDS)} {suffix}",
                "country_code": code,
                "name_pcode_sf": _pcode(rng),
            })
        return rows

    def gen_keyword(self):
        rng = random.Random(self.spec.seed + 23)
        rows = []
        for i in range(1, self.n_keywords + 1):
            if i <= len(_NAMED_KEYWORDS):
                word = _NAMED_KEYWORDS[i - 1]
            else:
                word = (f"{rng.choice(_TITLE_WORDS).lower()}-"
                        f"{rng.choice(_TITLE_WORDS).lower()}-{i}")
            rows.append({"id": i, "keyword": word,
                         "phonetic_code": _pcode(rng)})
        return rows

    # ------------------------------------------------------------------
    # Relationship tables
    # ------------------------------------------------------------------
    def gen_aka_name(self):
        rng = random.Random(self.spec.seed + 29)
        n = self.spec.rows_for("aka_name")
        return [{
            "id": i,
            "person_id": _skewed_id(rng, self.n_names),
            "name": _person_name(rng),
            "name_pcode_cf": _pcode(rng),
            "name_pcode_nf": _pcode(rng),
        } for i in range(1, n + 1)]

    def gen_aka_title(self):
        rng = random.Random(self.spec.seed + 31)
        n = self.spec.rows_for("aka_title")
        return [{
            "id": i,
            "movie_id": _skewed_id(rng, self.n_titles),
            "title": _movie_title(rng),
            "kind_id": rng.randint(1, len(KIND_TYPES)),
            "production_year": _production_year(rng),
        } for i in range(1, n + 1)]

    def gen_cast_info(self):
        rng = random.Random(self.spec.seed + 37)
        n = self.spec.rows_for("cast_info")
        rows = []
        for i in range(1, n + 1):
            rows.append({
                "id": i,
                "person_id": _skewed_id(rng, self.n_names),
                "movie_id": _skewed_id(rng, self.n_titles),
                "person_role_id": (_skewed_id(rng, self.n_chars)
                                   if rng.random() < 0.55 else None),
                "note": rng.choices(CI_NOTES, weights=_CI_NOTE_WEIGHTS)[0],
                "nr_order": rng.randint(1, 40) if rng.random() < 0.5
                            else None,
                "role_id": rng.choices(
                    range(1, len(ROLE_TYPES) + 1),
                    weights=[30, 20, 8, 8, 3, 3, 3, 6, 4, 10, 3, 2])[0],
            })
        return rows

    def gen_complete_cast(self):
        rng = random.Random(self.spec.seed + 41)
        n = self.spec.rows_for("complete_cast")
        return [{
            "id": i,
            "movie_id": _skewed_id(rng, self.n_titles),
            "subject_id": rng.randint(1, 2),     # cast / crew
            "status_id": rng.randint(3, 4),      # complete / +verified
        } for i in range(1, n + 1)]

    def gen_movie_companies(self):
        rng = random.Random(self.spec.seed + 43)
        n = self.spec.rows_for("movie_companies")
        return [{
            "id": i,
            "movie_id": _skewed_id(rng, self.n_titles),
            "company_id": _skewed_id(rng, self.n_companies),
            "company_type_id": rng.choices([1, 2, 3, 4],
                                           weights=[45, 45, 5, 5])[0],
            "note": rng.choices(MC_NOTES, weights=_MC_NOTE_WEIGHTS)[0],
        } for i in range(1, n + 1)]

    def _movie_info_value(self, rng, info_type_id):
        info = INFO_TYPES[info_type_id - 1]
        if info == "genres":
            return rng.choice(GENRES)
        if info == "countries":
            return rng.choice(MI_COUNTRIES)
        if info == "languages":
            return rng.choice(LANGUAGES)
        if info == "release dates":
            country = rng.choice(MI_COUNTRIES)
            year = _production_year(rng)
            return f"{country}:{year}"
        if info == "rating":
            return f"{rng.uniform(1.0, 9.9):.1f}"
        if info == "votes":
            return str(int(10 ** rng.uniform(1, 6)))
        if info in ("top 250 rank", "bottom 10 rank"):
            return str(rng.randint(1, 250))
        if info == "budget":
            return f"${int(10 ** rng.uniform(4, 8)):,}"
        if info == "runtimes":
            return str(rng.randint(40, 240))
        return f"{info}-{rng.randint(1, 500)}"

    def gen_movie_info(self):
        rng = random.Random(self.spec.seed + 47)
        n = self.spec.rows_for("movie_info")
        # movie_info covers the descriptive types (genres, countries...).
        type_pool = [3, 5, 8, 9, 10, 11, 12, 13, 14, 6]   # 1-based ids
        weights = [22, 14, 12, 10, 12, 6, 6, 4, 4, 10]
        rows = []
        for i in range(1, n + 1):
            info_type_id = rng.choices(type_pool, weights=weights)[0]
            rows.append({
                "id": i,
                "movie_id": _skewed_id(rng, self.n_titles),
                "info_type_id": info_type_id,
                "info": self._movie_info_value(rng, info_type_id),
                "note": None if rng.random() < 0.8 else "(approx.)",
            })
        return rows

    def gen_movie_info_idx(self):
        rng = random.Random(self.spec.seed + 53)
        n = self.spec.rows_for("movie_info_idx")
        # movie_info_idx holds the ranked types (rating, votes, top 250).
        type_pool = [4, 7, 1, 2]
        weights = [45, 45, 6, 4]
        rows = []
        for i in range(1, n + 1):
            info_type_id = rng.choices(type_pool, weights=weights)[0]
            rows.append({
                "id": i,
                "movie_id": _skewed_id(rng, self.n_titles),
                "info_type_id": info_type_id,
                "info": self._movie_info_value(rng, info_type_id),
            })
        return rows

    def gen_movie_keyword(self):
        rng = random.Random(self.spec.seed + 59)
        n = self.spec.rows_for("movie_keyword")
        # Named keywords are far more popular than the synthetic tail.
        named = len(_NAMED_KEYWORDS)
        rows = []
        for i in range(1, n + 1):
            if rng.random() < 0.35 and named:
                keyword_id = rng.randint(1, min(named, self.n_keywords))
            else:
                keyword_id = _skewed_id(rng, self.n_keywords, exponent=1.4)
            rows.append({
                "id": i,
                "movie_id": _skewed_id(rng, self.n_titles),
                "keyword_id": keyword_id,
            })
        return rows

    def gen_movie_link(self):
        rng = random.Random(self.spec.seed + 61)
        n = self.spec.rows_for("movie_link")
        return [{
            "id": i,
            "movie_id": _skewed_id(rng, self.n_titles),
            "linked_movie_id": rng.randint(1, self.n_titles),
            "link_type_id": rng.randint(1, len(LINK_TYPES)),
        } for i in range(1, n + 1)]

    def gen_person_info(self):
        rng = random.Random(self.spec.seed + 67)
        n = self.spec.rows_for("person_info")
        type_pool = [16, 18, 19, 20, 21, 22]
        rows = []
        for i in range(1, n + 1):
            info_type_id = rng.choice(type_pool)
            rows.append({
                "id": i,
                "person_id": _skewed_id(rng, self.n_names),
                "info_type_id": info_type_id,
                "info": f"{INFO_TYPES[info_type_id - 1]}-{rng.randint(1, 999)}",
                "note": None if rng.random() < 0.6 else "(source)",
            })
        return rows

    # ------------------------------------------------------------------
    def generate(self, table_name):
        """Rows of one table."""
        method = getattr(self, f"gen_{table_name}", None)
        if method is None:
            raise ReproError(f"no generator for table {table_name!r}")
        return method()

    def generate_all(self):
        """{table_name: rows} for all 21 tables."""
        return {name: self.generate(name) for name in JOB_TABLE_NAMES}


def generate_dataset(spec=None):
    """Generate all tables for a spec (default: tiny, seed 7)."""
    return DatasetGenerator(spec or DatasetSpec()).generate_all()
