"""Seed-deterministic table partitioning for the device cluster.

A :class:`Partitioner` assigns every row of every base table to exactly
one of ``n`` devices by primary key, in one of two layouts:

``range``
    The fitted partitioner cuts each table's *actual* key space into
    ``n`` contiguous, count-balanced runs.  A range shard carries
    ``pk_lo``/``pk_hi`` bounds, so the driving scan prunes at the
    storage layer — device ``i`` only reads its own key range's blocks
    (I/O scales down with the cluster).

``hash``
    ``stable_hash((table, seed, pk)) % n`` — no fitting needed, robust
    to skewed key ranges.  Hash shards are *logical*: a scan still reads
    every block (mirrored storage), but only shard rows are evaluated,
    so compute scales down while scan I/O does not.  The scaling sweep
    defaults to range for this reason.

Both layouts are pure functions of ``(kind, seed, n, table, key)`` plus
— for range — the loaded key space, which is itself seed-deterministic,
so the same seeds reproduce the same partitioning byte for byte.
"""

import numpy as np

from repro.engine.pipeline import stable_hash
from repro.errors import ReproError
from repro.relational.scan import ScanRequest


class TableShard:
    """One device's slice of one table's scan responsibility.

    The pipeline executor consumes this duck-typed surface:
    ``pk_lo``/``pk_hi`` (storage-level pruning bounds, ``None`` for hash
    shards), ``contains(pk)`` (membership routing), ``clamp(lo, hi)``
    (intersection with plan-derived PK bounds), and ``is_empty``.
    """

    __slots__ = ("table", "index", "n_partitions", "pk_lo", "pk_hi",
                 "is_empty", "_seed", "_hashed")

    def __init__(self, table, index, n_partitions, pk_lo=None, pk_hi=None,
                 is_empty=False, seed=None):
        self.table = table
        self.index = index
        self.n_partitions = n_partitions
        self.pk_lo = pk_lo
        self.pk_hi = pk_hi
        self.is_empty = is_empty
        self._seed = seed
        self._hashed = seed is not None

    def contains(self, pk_value):
        """Whether ``pk_value`` belongs to this shard."""
        if self.is_empty:
            return False
        if self._hashed:
            return (stable_hash((self.table, self._seed, pk_value))
                    % self.n_partitions == self.index)
        if self.pk_lo is not None and pk_value < self.pk_lo:
            return False
        if self.pk_hi is not None and pk_value > self.pk_hi:
            return False
        return True

    def contains_array(self, pk_values):
        """Vectorized :meth:`contains` over a primary-key array.

        Hash membership folds the constant ``(table, seed)`` hash prefix
        once and applies the final FNV-style round to the whole int64
        key column — bit-identical to ``stable_hash`` per key, since the
        31-bit masked fold never overflows int64.
        """
        values = np.asarray(pk_values)
        n = len(values)
        if self.is_empty:
            return np.zeros(n, dtype=bool)
        if self._hashed:
            if n and values.dtype.kind != "i":
                return np.fromiter(
                    (self.contains(value) for value in values.tolist()),
                    dtype=bool, count=n)
            prefix = stable_hash((self.table, self._seed))
            hashes = ((prefix * 1000003) ^ values.astype(np.int64)) \
                & 0x7FFFFFFF
            return (hashes % self.n_partitions) == self.index
        mask = np.ones(n, dtype=bool)
        if self.pk_lo is not None:
            mask &= values >= self.pk_lo
        if self.pk_hi is not None:
            mask &= values <= self.pk_hi
        return mask

    def clamp(self, lo, hi):
        """Intersect plan-derived PK bounds with this shard's bounds."""
        if self.pk_lo is not None:
            lo = self.pk_lo if lo is None else max(lo, self.pk_lo)
        if self.pk_hi is not None:
            hi = self.pk_hi if hi is None else min(hi, self.pk_hi)
        return lo, hi

    def describe(self):
        """Short human-readable label for reports."""
        if self.is_empty:
            return f"{self.table}[{self.index}]: empty"
        if self._hashed:
            return (f"{self.table}[{self.index}]: "
                    f"hash%{self.n_partitions}=={self.index}")
        return (f"{self.table}[{self.index}]: "
                f"pk in [{self.pk_lo}, {self.pk_hi}]")


class Partitioner:
    """Assigns table rows to ``n`` devices; hash or range layout.

    Build one with :meth:`fit`: hash partitioners need no catalog state,
    range partitioners compute per-table cut points from the loaded key
    space.  ``shards(table)`` returns one :class:`TableShard` per
    device; ``assign(table, pk)`` routes a single key.
    """

    def __init__(self, kind, n_partitions, seed=0, bounds=None):
        if kind not in ("hash", "range"):
            raise ReproError(f"unknown partitioner kind {kind!r}")
        if n_partitions < 1:
            raise ReproError("partitioner needs at least one partition")
        self.kind = kind
        self.n_partitions = n_partitions
        self.seed = seed
        #: range only: {table: [(lo, hi) or None per device]}
        self._bounds = bounds or {}

    @classmethod
    def fit(cls, kind, n_partitions, catalog, seed=0):
        """A partitioner fitted to the catalog's loaded key space.

        Range fitting sorts each table's primary keys and cuts them into
        ``n`` contiguous, count-balanced runs; tables with fewer rows
        than devices leave the surplus shards empty (a legal layout the
        executor must — and does — handle).
        """
        if kind == "hash":
            return cls(kind, n_partitions, seed=seed)
        bounds = {}
        for table in catalog.tables():
            pk = table.schema.primary_key
            keys = sorted(row[pk] for row in
                          table.scan(ScanRequest(columns=(pk,))))
            cuts = []
            for index in range(n_partitions):
                lo_i = len(keys) * index // n_partitions
                hi_i = len(keys) * (index + 1) // n_partitions
                if lo_i >= hi_i:
                    cuts.append(None)                 # empty shard
                else:
                    cuts.append((keys[lo_i], keys[hi_i - 1]))
            bounds[table.name] = cuts
        return cls(kind, n_partitions, seed=seed, bounds=bounds)

    def shard(self, table_name, index):
        """Device ``index``'s :class:`TableShard` of ``table_name``."""
        if not 0 <= index < self.n_partitions:
            raise ReproError(
                f"shard index {index} out of range for "
                f"{self.n_partitions} partitions")
        if self.kind == "hash":
            return TableShard(table_name, index, self.n_partitions,
                              seed=self.seed)
        cuts = self._bounds.get(table_name)
        if cuts is None:
            raise ReproError(
                f"range partitioner was not fitted for table "
                f"{table_name!r}")
        bounds = cuts[index]
        if bounds is None:
            return TableShard(table_name, index, self.n_partitions,
                              is_empty=True)
        return TableShard(table_name, index, self.n_partitions,
                          pk_lo=bounds[0], pk_hi=bounds[1])

    def shards(self, table_name):
        """All devices' shards of ``table_name``, in device order."""
        return [self.shard(table_name, index)
                for index in range(self.n_partitions)]

    def assign(self, table_name, pk_value):
        """The device index that owns ``(table_name, pk_value)``."""
        if self.kind == "hash":
            return (stable_hash((table_name, self.seed, pk_value))
                    % self.n_partitions)
        for index, shard in enumerate(self.shards(table_name)):
            if shard.contains(pk_value):
                return index
        # Keys outside every fitted run (inserted after fitting) fall
        # into the nearest boundary shard so routing still totals.
        cuts = [c for c in self._bounds.get(table_name, ()) if c]
        if cuts and pk_value < cuts[0][0]:
            return self._bounds[table_name].index(cuts[0])
        if cuts:
            return self._bounds[table_name].index(cuts[-1])
        return 0

    def describe(self):
        """``{kind, seed, n_partitions}`` for reports and benchmarks."""
        return {"kind": self.kind, "seed": self.seed,
                "n_partitions": self.n_partitions}
