"""Multi-device scale-out: scatter-gather cooperative execution.

A :class:`DeviceCluster` attaches ``n`` smart-storage devices to one
host over *mirrored* storage (one flash store, one LSM database, one
catalog — see :class:`repro.storage.topology.Topology`).  The
:class:`ScatterGatherExecutor` runs one query across all of them:

1. **Scatter** — a seed-deterministic
   :class:`~repro.cluster.partition.Partitioner` splits the driving
   table's scan responsibility into per-device shards; each device runs
   the hybridNDP split the :class:`~repro.core.planner.HybridPlanner`
   picked for it, restricted to its shard, as a staged
   :class:`~repro.engine.cooperative._SplitSimulation` on one shared
   :class:`~repro.sim.ClusterSimContext` (one clock, one host CPU, one
   PCIe link + NDP core per device).
2. **Gather** — partitions complete on the shared timeline; the host
   concatenates their pre-finalize joined rows in partition order and
   runs the aggregation/sort epilogue *once* on the shared CPU.

Merge correctness: because the driving shards are disjoint and cover the
table, and inner probes read the full mirrored data set, the per-device
joined-row sets are disjoint and their union equals the serial result's
pre-finalize rows — so one final epilogue is exact for every aggregate,
including AVG (docs/cluster.md has the full argument).

Partition placement is whole-partition: a partition whose planner
decision is host-only (or whose device pipeline cannot be reserved) runs
its shard on the host's native path, serialized on the shared CPU.

Robustness (docs/robustness.md, "Stragglers, speculation, and
deadlines"):

* **Multi-fault degradation** — a device whose offload exhausts its
  retries is marked failed and its partition re-executes on the
  least-loaded surviving device; the cascade is iterative, so *any*
  number of device failures eventually degrades to the host fallback.
  A :class:`~repro.faults.RetryPolicy` ``wasted_time_budget`` caps the
  total simulated seconds one run may burn on abandoned attempts —
  once exceeded, remaining re-executions short-circuit to the host.
* **Speculative straggler mitigation** — with a
  :class:`SpeculationPolicy`, the executor watches per-partition
  progress on the shared clock; a partition running past
  ``factor ×`` the median completed duration is cloned onto an idle
  device (or the host), first result wins, the loser is cooperatively
  cancelled and its cost audited in ``report.cluster["speculation"]``.
* **Deadlines** — ``ExecutionContext.deadline`` bounds the whole run in
  simulated time: at the deadline every in-flight attempt is cancelled
  (reservations released) and the run raises
  :class:`~repro.errors.DeadlineExceededError` with a partial audit.
"""

from dataclasses import dataclass, field, replace

from repro.columns import ColumnBatch
from repro.context import ExecutionContext
from repro.core import DeviceLoad, ExecutionStrategy, PlanningContext
from repro.cluster.partition import Partitioner
from repro.engine.cooperative import CooperativeExecutor
from repro.engine.counters import WorkCounters
from repro.engine.ndp import NDPEngine
from repro.engine.results import ExecutionReport, TimelinePhase
from repro.engine.timing import ExecutionLocation, TimingModel
from repro.errors import (DeadlineExceededError, DeviceOverloadError,
                          ReproError)
from repro.faults import FAULTS_TRACK, FaultPlan
from repro.sim import HOST_RESOURCE, ClusterSimContext
from repro.storage.topology import Topology


@dataclass(frozen=True)
class ClusterFaultPlan:
    """Per-device fault plans for a cluster run.

    ``plans`` maps device index to a :class:`~repro.faults.FaultPlan`;
    devices without an entry get ``default`` (``None`` = no faults).
    Passing a plain ``FaultPlan`` as ``ExecutionContext.faults`` instead
    applies it to every device (each device still draws its own
    injector, hence its own RNG stream).
    """

    plans: dict = field(default_factory=dict)
    default: object = None

    def plan_for(self, index):
        """The fault plan device ``index`` runs under (may be None)."""
        return self.plans.get(index, self.default)


@dataclass(frozen=True)
class SpeculationPolicy:
    """When and how the scatter-gather executor clones stragglers.

    Once at least ``quorum`` (a fraction, rounded up) of the device-placed
    partitions have completed, the median completed-attempt duration
    becomes the reference; an in-flight attempt that exceeds ``factor ×``
    that median is cloned once onto the least-loaded idle surviving
    device (or the host when none is free).  The first result wins; the
    loser is cooperatively cancelled and its elapsed cost is audited in
    ``report.cluster["speculation"]`` — never mixed into
    ``wasted_device_time``, which stays the *fault* waste.
    """

    factor: float = 1.5
    quorum: float = 0.5

    def __post_init__(self):
        if self.factor < 1.0:
            raise ReproError("speculation factor must be >= 1.0")
        if not 0.0 < self.quorum <= 1.0:
            raise ReproError("speculation quorum must be in (0, 1]")

    def describe(self):
        return {"factor": self.factor, "quorum": self.quorum}


def _add_counters(total, extra):
    for name, value in extra.as_dict().items():
        setattr(total, name, getattr(total, name) + value)
    return total


class _Attempt:
    """One in-flight device execution of a partition's shard."""

    def __init__(self, device_index, prepared, started_at,
                 speculative=False):
        self.device_index = device_index
        self.prepared = prepared
        self.started_at = started_at
        self.speculative = speculative

    def cancel(self, now, reason):
        """Cooperatively cancel and release; returns elapsed seconds."""
        self.prepared.cancel(now, reason=reason)
        return max(0.0, now - self.started_at)


class _Partition:
    """One shard's execution state inside a scatter-gather run."""

    def __init__(self, index, shard, split_index):
        self.index = index
        self.shard = shard
        self.split_index = split_index
        self.placement = None       # "Hk@dJ" | "host" | "host-fallback" | "empty"
        self.device = None          # device index, None for host/empty
        self.attempted = []         # device indexes that failed this shard
        self.rows = None            # pre-finalize joined rows
        self.completed_at = None
        self.retries = 0
        self.host_counters = None
        self.device_counters = None
        self.timeline = ()
        self.batches = 0
        self.intermediate_rows = 0
        self.intermediate_bytes = 0
        self.setup_time = 0.0
        self.host_wait_initial = 0.0
        self.host_wait_other = 0.0
        self.transfer_time = 0.0
        self.host_processing = 0.0
        self.device_busy_time = 0.0
        self.device_stall_time = 0.0
        self.wasted_time = 0.0
        self.done = False           # first result committed
        self.duration = None        # winning attempt's elapsed seconds
        self.attempt = None         # primary in-flight _Attempt
        self.spec_attempt = None    # speculative clone's _Attempt
        self.speculated = False     # clone-once guard

    def describe(self):
        return {
            "partition": self.index,
            "placement": self.placement,
            "device": self.device,
            "shard": self.shard.describe() if self.shard is not None
            else "all",
            "rows": len(self.rows) if self.rows is not None else None,
            "completed_at": self.completed_at,
            "retries": self.retries,
            "attempted_devices": list(self.attempted),
        }


class DeviceCluster:
    """``n`` smart-storage devices over one environment's mirrored store.

    Built from an :class:`~repro.workloads.loader.Environment` plus a
    cluster :class:`~repro.storage.topology.Topology` (constructed here
    when not given): every device shares the environment's flash,
    database and catalog but owns its PCIe link, NDP core and DRAM
    budget, so each gets its own :class:`~repro.engine.ndp.NDPEngine`
    and :class:`~repro.engine.cooperative.CooperativeExecutor` around
    the shared host engine.

    Clusters may be heterogeneous (``Topology.cluster(device_specs=,
    links=)``): a device whose spec or link differs from the
    environment's gets its *own* :class:`~repro.engine.timing.TimingModel`
    priced off its hardware; homogeneous devices share the environment's
    model, so homogeneous clusters stay byte-identical to before.

    ``speculation`` (a :class:`SpeculationPolicy`, or ``None`` to
    disable) turns on speculative straggler re-execution for every run.
    """

    def __init__(self, env, n_devices=None, partitioner=None,
                 topology=None, speculation=None):
        if topology is None:
            if n_devices is None:
                raise ReproError(
                    "DeviceCluster needs n_devices or a cluster topology")
            topology = Topology.cluster(
                n_devices, partitioner=partitioner,
                device_spec=env.device.spec, host_spec=env.runner.host_spec,
                flash=env.device.flash, link=env.device.link)
        elif n_devices is not None and topology.n_devices != n_devices:
            raise ReproError(
                f"topology has {topology.n_devices} devices, "
                f"n_devices={n_devices} disagrees")
        if speculation is not None and not isinstance(speculation,
                                                     SpeculationPolicy):
            raise ReproError(
                f"speculation must be a SpeculationPolicy, "
                f"got {type(speculation).__name__}")
        self.env = env
        self.topology = topology
        self.devices = topology.devices
        self.speculation = speculation
        spec = topology.partitioning
        if spec is None:
            spec = Topology.cluster(topology.n_devices).partitioning
        self.partitioner = Partitioner.fit(
            spec.kind, topology.n_devices, env.catalog, seed=spec.seed)
        host = env.runner.cooperative.host
        timing = env.runner.timing
        ndp_config = env.runner.ndp_engine.config
        host_spec = env.runner.host_spec
        base = env.device
        self.executors = [
            CooperativeExecutor(
                host,
                NDPEngine(env.catalog, env.database, device, ndp_config),
                timing if (device.spec == base.spec
                           and device.link == base.link)
                else TimingModel(device, host_spec))
            for device in self.devices
        ]
        self.host = host
        self.timing = timing
        self.executor = ScatterGatherExecutor(self)

    @property
    def n_devices(self):
        """How many devices the cluster has."""
        return len(self.devices)

    def run(self, query, ctx=None, split_index=None):
        """Scatter-gather ``query`` across the cluster (see executor)."""
        return self.executor.run(query, ctx=ctx, split_index=split_index)

    def device_load(self, kernel, index):
        """Device ``index``'s :class:`~repro.core.DeviceLoad` snapshot."""
        def _utilization(resource):
            horizon = max(kernel.now, resource.free_at)
            if horizon <= 0:
                return 0.0
            return min(1.0, resource.busy_time / horizon)

        device = self.devices[index]
        return DeviceLoad(
            core_utilization=_utilization(kernel.cores[index]),
            link_utilization=_utilization(kernel.links[index]),
            reserved_fraction=(device.reserved_bytes
                               / max(1, device.buffer_budget)),
        )


class _RunState:
    """Mutable state of one scatter-gather run."""

    def __init__(self, plan, ctx, kernel, tracer, partitions, budget):
        self.plan = plan
        self.ctx = ctx
        self.kernel = kernel
        self.tracer = tracer
        self.partitions = partitions
        self.failed_devices = set()
        self.failures = []           # audit of abandoned offloads
        self.inflight_devices = set()
        self.budget = budget         # wasted-time cap, None = unbounded
        self.budget_exhausted = False
        self.spec_events = []        # speculation audit trail
        self.spec_clones = 0
        self.spec_wasted = 0.0       # losing attempts' elapsed seconds
        self.deadline_hit = False
        self.deadline_cancelled = []

    @property
    def wasted_total(self):
        return sum(part.wasted_time for part in self.partitions)


class ScatterGatherExecutor:
    """Runs one query as concurrent per-shard splits plus a host merge."""

    def __init__(self, cluster):
        self.cluster = cluster

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, query, ctx=None, split_index=None):
        """Execute ``query`` (SQL or plan) across the whole cluster.

        Returns a merged :class:`~repro.engine.results.ExecutionReport`
        whose rows are identical to single-device serial execution;
        ``report.cluster`` records the per-partition placements, the
        speculation audit and any degradations; ``report.resource_stats``
        has one link/core pair per device.  ``split_index`` pins every
        device partition to Hk; by default each partition runs the
        planner's load-aware choice.  ``ctx.deadline`` bounds the run in
        simulated seconds — exceeding it cancels every in-flight attempt
        and raises :class:`~repro.errors.DeadlineExceededError`.
        """
        ctx = ExecutionContext.coerce(ctx)
        cluster = self.cluster
        env = cluster.env
        plan = env.runner.plan(query) if isinstance(query, str) else query
        n = cluster.n_devices
        kernel = ClusterSimContext.fresh(n, tracer=ctx.tracer)
        tracer = ctx.sim_tracer()

        driving = plan.entries[0].table_name
        if n == 1:
            # Single device: no shard restriction at all, so the device
            # fragment is byte-identical to the serial hybrid path.
            shards = [None]
        else:
            shards = cluster.partitioner.shards(driving)

        partitions = []
        for index, shard in enumerate(shards):
            split = self._partition_split(plan, kernel, index, split_index)
            partitions.append(_Partition(index, shard, split))
        state = _RunState(plan, ctx, kernel, tracer, partitions,
                          self._wasted_budget(ctx))

        for part in partitions:
            if part.shard is not None and part.shard.is_empty:
                part.placement = "empty"
                part.rows = ColumnBatch.empty()
                part.completed_at = 0.0
                part.done = True
                continue
            if part.split_index is None:
                self._start_host(state, part, at=0.0)
            else:
                self._start_device(state, part, part.index, at=0.0)

        if ctx.deadline is not None:
            kernel.loop.schedule_at(
                ctx.deadline, lambda: self._deadline_expired(state),
                label="cluster deadline")

        kernel.loop.run()
        if state.deadline_hit:
            raise self._deadline_error(state)
        unfinished = [part.index for part in partitions
                      if part.rows is None]
        if unfinished:
            raise ReproError(
                f"scatter-gather drained with unfinished partitions: "
                f"{unfinished}")
        return self._merge(state)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _partition_split(self, plan, kernel, index, split_index):
        """The Hk each partition runs, or None for host placement."""
        if split_index is not None:
            return min(split_index, plan.table_count - 1)
        load = self.cluster.device_load(kernel, index)
        decision = self.cluster.env.planner.decide(
            plan, context=PlanningContext(device_load=load))
        if decision.strategy is ExecutionStrategy.HOST_ONLY:
            return None
        split = decision.split_index
        if decision.strategy is ExecutionStrategy.FULL_NDP or split is None:
            # Full NDP would finalize on-device; the cluster must merge
            # partitions before finalizing, so run the deepest hybrid
            # split instead (whole join pipeline on-device, epilogue
            # deferred to the gather).
            split = plan.table_count - 1
        return min(split, plan.table_count - 1)

    def _ctx_for(self, ctx, device_index):
        """The context device ``device_index`` executes under."""
        if isinstance(ctx.faults, ClusterFaultPlan):
            return replace(ctx, faults=ctx.faults.plan_for(device_index))
        return ctx

    def _wasted_budget(self, ctx):
        """The run's wasted-time cap: context policy, then fault plan."""
        if ctx.retry_policy is not None:
            return ctx.retry_policy.wasted_time_budget
        faults = ctx.faults
        if isinstance(faults, ClusterFaultPlan):
            faults = faults.default
        if isinstance(faults, FaultPlan):
            return faults.retry.wasted_time_budget
        return None

    def _start_device(self, state, part, device_index, at,
                      speculative=False):
        """Stage and start ``part`` on device ``device_index``."""
        executor = self.cluster.executors[device_index]
        ctx = self._ctx_for(state.ctx, device_index)
        label = (f"p{part.index}" if device_index == part.index
                 else f"p{part.index}@d{device_index}")
        if speculative:
            label += "+spec"
        try:
            prepared = executor.prepare_split(
                state.plan, part.split_index, ctx,
                kernel=state.kernel.view(device_index),
                trace_label=f"d{device_index}/{label}",
                shard=part.shard, finalize=False)
        except DeviceOverloadError:
            # The shard's pipeline does not fit this device's DRAM
            # budget; the shard runs on the host instead.
            self._start_host(state, part, at=at, speculative=speculative)
            return
        attempt = _Attempt(device_index, prepared, at,
                           speculative=speculative)
        if speculative:
            part.spec_attempt = attempt
        else:
            part.attempt = attempt
            part.device = device_index
            part.placement = f"H{part.split_index}@d{device_index}"
        state.inflight_devices.add(device_index)
        prepared.start(
            at,
            on_complete=lambda sim, part=part, attempt=attempt:
                self._attempt_done(state, part, attempt, sim),
            on_abandon=lambda sim, error, part=part, attempt=attempt:
                self._attempt_abandoned(state, part, attempt, error))

    def _attempt_done(self, state, part, attempt, sim):
        now = sim.host_end
        state.inflight_devices.discard(attempt.device_index)
        if part.done:
            # Lost a same-timestamp race: the winner committed first.
            state.spec_wasted += max(0.0, now - attempt.started_at)
            attempt.prepared.release()
            return
        part.done = True
        part.duration = now - attempt.started_at
        prepared = attempt.prepared
        part.device = attempt.device_index
        part.placement = f"H{part.split_index}@d{attempt.device_index}"
        part.rows = ColumnBatch.concat(sim.joined_rows)
        part.completed_at = now
        part.host_counters = prepared.host_counters
        part.device_counters = prepared.execution.counters
        part.timeline = list(sim.timeline)
        part.batches = prepared.n_batches
        part.intermediate_rows = prepared.intermediate_rows
        part.intermediate_bytes = (prepared.intermediate_rows
                                   * prepared.row_bytes)
        part.setup_time = prepared.setup_time
        part.host_wait_initial = sim.host_wait_initial
        part.host_wait_other = sim.host_wait_other
        part.transfer_time = sim.transfer_total
        part.host_processing = sim.host_processing
        part.device_busy_time = prepared.device_time + sim.slow_time
        part.device_stall_time = sim.device_stall
        part.retries += sim.retries
        part.wasted_time += sim.wasted_time
        prepared.release()
        self._cancel_losers(state, part, attempt, now)
        self._maybe_speculate(state, now)

    # ------------------------------------------------------------------
    # Speculation
    # ------------------------------------------------------------------
    def _maybe_speculate(self, state, now):
        """After a completion: arm straggler checks if quorum is met."""
        policy = self.cluster.speculation
        if policy is None:
            return
        eligible = [part for part in state.partitions
                    if part.split_index is not None]
        durations = sorted(part.duration for part in eligible
                           if part.done and part.duration is not None)
        if not durations:
            return
        needed = max(1, -(-len(eligible) * policy.quorum // 1))
        if len(durations) < needed:
            return
        median = durations[len(durations) // 2]
        threshold = policy.factor * median
        for part in eligible:
            if part.done or part.speculated or part.attempt is None:
                continue
            fire_at = part.attempt.started_at + threshold
            if fire_at <= now:
                self._clone(state, part, now, median)
            else:
                state.kernel.loop.schedule_at(
                    fire_at,
                    lambda part=part, fire_at=fire_at, median=median:
                        self._speculation_check(state, part, fire_at,
                                                median),
                    label=f"speculation check p{part.index}")

    def _speculation_check(self, state, part, now, median):
        """A scheduled straggler check fired: clone if still running."""
        if part.done or part.speculated or part.attempt is None:
            return
        if state.deadline_hit:
            return
        self._clone(state, part, now, median)

    def _clone(self, state, part, now, median):
        """Clone the straggling ``part`` onto an idle device or the host."""
        part.speculated = True
        state.spec_clones += 1
        straggler = part.attempt.device_index
        candidates = [
            j for j in range(self.cluster.n_devices)
            if j != straggler
            and j not in state.failed_devices
            and j not in part.attempted
            and j not in state.inflight_devices
        ]
        if candidates:
            target = min(
                candidates,
                key=lambda j: (state.kernel.cores[j].free_at,
                               self.cluster.devices[j].reserved_bytes, j))
            where = f"d{target}"
        else:
            target = None
            where = "host"
        event = {
            "partition": part.index,
            "straggler_device": straggler,
            "clone": where,
            "at": now,
            "median": median,
            "elapsed": now - part.attempt.started_at,
        }
        state.spec_events.append(event)
        if state.tracer.enabled:
            state.tracer.instant(
                FAULTS_TRACK,
                f"speculate p{part.index}: d{straggler} -> {where}", now,
                args=dict(event))
        if target is not None:
            self._start_device(state, part, target, at=now,
                               speculative=True)
        else:
            self._start_host(state, part, at=now, speculative=True)

    def _cancel_losers(self, state, part, winner, now):
        """First result wins: cancel the other in-flight attempt."""
        for loser in (part.attempt, part.spec_attempt):
            if loser is None or loser is winner:
                continue
            elapsed = loser.cancel(now, reason="speculation-loser")
            state.inflight_devices.discard(loser.device_index)
            state.spec_wasted += elapsed
            state.spec_events.append({
                "partition": part.index,
                "loser_device": loser.device_index,
                "cancelled_at": now,
                "wasted": elapsed,
            })
            if state.tracer.enabled:
                state.tracer.instant(
                    FAULTS_TRACK,
                    f"speculation loser p{part.index}@"
                    f"d{loser.device_index} cancelled", now,
                    args={"partition": part.index, "wasted": elapsed})
        part.attempt = None
        part.spec_attempt = None

    # ------------------------------------------------------------------
    # Degradation
    # ------------------------------------------------------------------
    def _attempt_abandoned(self, state, part, attempt, error):
        """A device failure: re-execute the shard elsewhere.

        The failed device is excluded from all further placement.  The
        cascade is iterative — each re-execution picks the least-loaded
        surviving device, any number of failures eventually falls back
        to the host — and bounded by the run's wasted-time budget: once
        the total abandoned-attempt cost exceeds it, remaining
        re-executions short-circuit straight to the host.
        """
        now = state.kernel.now
        failed = attempt.device_index
        attempt.prepared.release()
        state.inflight_devices.discard(failed)
        part.retries += error.retries
        part.wasted_time += error.wasted_time
        part.attempted.append(failed)
        state.failed_devices.add(failed)
        state.failures.append({
            "partition": part.index,
            "device": failed,
            "at": now,
            "retries": error.retries,
            "error": str(error),
        })
        if state.tracer.enabled:
            state.tracer.instant(
                FAULTS_TRACK, f"device {failed} failed", now,
                args={"partition": part.index, "retries": error.retries})
        if part.done:
            return                   # a speculative winner already landed
        if attempt.speculative:
            part.spec_attempt = None
            if part.attempt is not None:
                return               # the primary attempt races on alone
        else:
            part.attempt = None
            if part.spec_attempt is not None:
                # The clone outlives its failed primary and becomes the
                # partition's attempt of record.
                part.spec_attempt.speculative = False
                part.attempt = part.spec_attempt
                part.spec_attempt = None
                return
        if state.budget is not None and state.wasted_total > state.budget:
            if not state.budget_exhausted:
                state.budget_exhausted = True
                state.failures.append({
                    "partition": part.index,
                    "at": now,
                    "budget": state.budget,
                    "wasted_total": state.wasted_total,
                    "error": "wasted-time budget exhausted; "
                             "degrading to host",
                })
            self._start_host(state, part, at=now, fallback=True)
            return
        survivors = [
            j for j in range(self.cluster.n_devices)
            if j not in state.failed_devices and j not in part.attempted
        ]
        if survivors:
            target = min(
                survivors,
                key=lambda j: (state.kernel.cores[j].free_at, j))
            self._start_device(state, part, target, at=now)
        else:
            self._start_host(state, part, at=now, fallback=True)

    # ------------------------------------------------------------------
    # Host placement
    # ------------------------------------------------------------------
    def _start_host(self, state, part, at, fallback=False,
                    speculative=False):
        """Run ``part``'s shard host-only, serialized on the shared CPU.

        The rows come from an eager native-path pipeline run over the
        shard (identical to the device path's pre-finalize rows by
        construction); the shared CPU resource then prices when that
        service time actually fits between the other partitions' host
        work.  A *speculative* host attempt commits only when its CPU
        slot ends and the device primary has not won by then — its CPU
        booking stands either way, the honest cost of hedging.
        """
        kernel = state.kernel
        counters = WorkCounters()
        rows, _row_bytes = self.cluster.host.run_pipeline(
            state.plan, counters, driving_shard=part.shard)
        service, _ = self.cluster.timing.charge(counters,
                                                ExecutionLocation.HOST)
        begin, end = kernel.cpu.acquire(
            at, service, label=f"host partition {part.index}")
        if speculative:
            kernel.loop.schedule_at(
                end,
                lambda: self._host_attempt_done(
                    state, part, rows, counters, service, begin, end),
                label=f"host clone p{part.index}")
            return
        self._commit_host(state, part, rows, counters, service, begin, end,
                          fallback=fallback)

    def _commit_host(self, state, part, rows, counters, service, begin,
                     end, fallback=False, speculative=False):
        part.done = True
        part.duration = end - begin
        part.placement = ("host-speculative" if speculative
                          else "host-fallback" if fallback else "host")
        part.device = None
        part.rows = rows
        part.completed_at = end
        part.host_counters = counters
        part.host_processing = service
        part.timeline = [
            TimelinePhase("host", "compute", begin, end,
                          f"partition {part.index} (host)",
                          resource=HOST_RESOURCE),
        ]
        if state.tracer.enabled:
            state.tracer.span(
                f"exec/p{part.index}", part.placement, begin, end,
                category="execution",
                args={"partition": part.index, "service_time": service})

    def _host_attempt_done(self, state, part, rows, counters, service,
                           begin, end):
        """A speculative host clone's CPU slot finished."""
        if part.done:
            state.spec_wasted += service
            state.spec_events.append({
                "partition": part.index,
                "loser_device": None,
                "cancelled_at": end,
                "wasted": service,
            })
            return
        self._commit_host(state, part, rows, counters, service, begin,
                          end, speculative=True)
        self._cancel_losers(state, part, None, end)
        self._maybe_speculate(state, end)

    # ------------------------------------------------------------------
    # Deadline
    # ------------------------------------------------------------------
    def _deadline_expired(self, state):
        """The run deadline fired: cancel everything still in flight."""
        if all(part.done for part in state.partitions):
            return
        now = state.ctx.deadline
        state.deadline_hit = True
        if state.tracer.enabled:
            state.tracer.instant(
                FAULTS_TRACK, f"deadline {now}s expired", now,
                args={"unfinished": [part.index
                                     for part in state.partitions
                                     if not part.done]})
        for part in state.partitions:
            for attempt in (part.attempt, part.spec_attempt):
                if attempt is None:
                    continue
                elapsed = attempt.cancel(now, reason="deadline")
                state.inflight_devices.discard(attempt.device_index)
                part.wasted_time += elapsed
                state.deadline_cancelled.append({
                    "partition": part.index,
                    "device": attempt.device_index,
                    "elapsed": elapsed,
                    "speculative": attempt.speculative,
                })
            part.attempt = None
            part.spec_attempt = None

    def _deadline_error(self, state):
        partitions = state.partitions
        completed = [part.index for part in partitions if part.done]
        return DeadlineExceededError(
            f"cluster run blew its {state.ctx.deadline}s deadline with "
            f"{len(partitions) - len(completed)} of {len(partitions)} "
            f"partitions unfinished",
            deadline=state.ctx.deadline,
            elapsed=state.ctx.deadline,
            retries=sum(part.retries for part in partitions),
            wasted_time=state.wasted_total,
            partial={
                "completed_partitions": completed,
                "cancelled": list(state.deadline_cancelled),
                "placements": {part.index: part.placement
                               for part in partitions},
                "failed_devices": sorted(state.failed_devices),
            })

    # ------------------------------------------------------------------
    # Gather
    # ------------------------------------------------------------------
    def _merge(self, state):
        """Concatenate partitions in order, finalize once, build report."""
        cluster = self.cluster
        kernel = state.kernel
        partitions = state.partitions
        # Partition order => deterministic gather-merge of the batches.
        merged_rows = ColumnBatch.concat([part.rows for part in partitions])
        merge_counters = WorkCounters()
        result = cluster.host.finalize_fragment(state.plan, merged_rows,
                                                merge_counters)
        merge_time, _ = cluster.timing.charge(merge_counters,
                                              ExecutionLocation.HOST)
        # Not kernel.now: stale no-op events (a cancelled straggler's
        # pending batch, a deadline that never fired) advance the clock
        # past the real work.  The gather is ready when the last
        # partition's host work lands; the CPU resource itself prices
        # any further wait.
        gather_at = max(part.completed_at for part in partitions)
        begin, end = kernel.cpu.acquire(gather_at, merge_time,
                                        label="gather-merge")
        # Not kernel.horizon: that includes clock.now, which a cancelled
        # attempt's stale (no-op) events drag past the real work.  The
        # makespan is the gather end or the last booked resource instant,
        # whichever is later — identical to the horizon when nothing was
        # cancelled.
        total = max([end] + [resource.free_at
                             for resource in kernel.resources()])
        if state.tracer.enabled:
            state.tracer.span("exec/gather", "gather-merge", begin, end,
                              category="execution",
                              args={"rows_in": len(merged_rows),
                                    "rows_out": len(result.rows)})

        host_counters = WorkCounters()
        device_counters = WorkCounters()
        for part in partitions:
            if part.host_counters is not None:
                _add_counters(host_counters, part.host_counters)
            if part.device_counters is not None:
                _add_counters(device_counters, part.device_counters)
        _add_counters(host_counters, merge_counters)

        timeline = []
        for part in partitions:
            timeline.extend(part.timeline)
        timeline.append(TimelinePhase("host", "compute", begin, end,
                                      "gather-merge",
                                      resource=HOST_RESOURCE))
        timeline.sort(key=lambda phase: (phase.start, phase.end))

        device_parts = [part for part in partitions
                        if part.device is not None]
        split_label = (f"H{device_parts[0].split_index}" if device_parts
                       else "host")
        policy = cluster.speculation
        report = ExecutionReport(
            strategy=f"scatter-gather[{cluster.n_devices}x{split_label}]",
            total_time=total,
            result=result,
            split_index=(device_parts[0].split_index if device_parts
                         else None),
            host_counters=host_counters,
            device_counters=device_counters,
            setup_time=sum(part.setup_time for part in partitions),
            host_wait_initial=sum(part.host_wait_initial
                                  for part in partitions),
            host_wait_other=sum(part.host_wait_other
                                for part in partitions),
            transfer_time=sum(part.transfer_time for part in partitions),
            host_processing_time=(sum(part.host_processing
                                      for part in partitions)
                                  + merge_time),
            device_busy_time=sum(part.device_busy_time
                                 for part in partitions),
            device_stall_time=sum(part.device_stall_time
                                  for part in partitions),
            batches=sum(part.batches for part in partitions),
            intermediate_rows=sum(part.intermediate_rows
                                  for part in partitions),
            intermediate_bytes=sum(part.intermediate_bytes
                                   for part in partitions),
            timeline=timeline,
            resource_stats=kernel.resource_stats(total),
            trace_metrics=state.tracer.metrics(),
            cluster={
                "n_devices": cluster.n_devices,
                "partitioner": cluster.partitioner.describe(),
                "driving_table": state.plan.entries[0].table_name,
                "merge_time": merge_time,
                "partitions": [part.describe() for part in partitions],
                "failed_devices": sorted(state.failed_devices),
                "failures": state.failures,
                "speculation": {
                    "policy": (policy.describe() if policy is not None
                               else None),
                    "clones": state.spec_clones,
                    "events": list(state.spec_events),
                    "wasted_time": state.spec_wasted,
                },
            },
        )
        retries = sum(part.retries for part in partitions)
        if retries:
            report.retries = retries
            report.wasted_device_time = sum(part.wasted_time
                                            for part in partitions)
        return report
