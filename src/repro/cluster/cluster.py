"""Multi-device scale-out: scatter-gather cooperative execution.

A :class:`DeviceCluster` attaches ``n`` smart-storage devices to one
host over *mirrored* storage (one flash store, one LSM database, one
catalog — see :class:`repro.storage.topology.Topology`).  The
:class:`ScatterGatherExecutor` runs one query across all of them:

1. **Scatter** — a seed-deterministic
   :class:`~repro.cluster.partition.Partitioner` splits the driving
   table's scan responsibility into per-device shards; each device runs
   the hybridNDP split the :class:`~repro.core.planner.HybridPlanner`
   picked for it, restricted to its shard, as a staged
   :class:`~repro.engine.cooperative._SplitSimulation` on one shared
   :class:`~repro.sim.ClusterSimContext` (one clock, one host CPU, one
   PCIe link + NDP core per device).
2. **Gather** — partitions complete on the shared timeline; the host
   concatenates their pre-finalize joined rows in partition order and
   runs the aggregation/sort epilogue *once* on the shared CPU.

Merge correctness: because the driving shards are disjoint and cover the
table, and inner probes read the full mirrored data set, the per-device
joined-row sets are disjoint and their union equals the serial result's
pre-finalize rows — so one final epilogue is exact for every aggregate,
including AVG (docs/cluster.md has the full argument).

Partition placement is whole-partition: a partition whose planner
decision is host-only (or whose device pipeline cannot be reserved) runs
its shard on the host's native path, serialized on the shared CPU.  A
device whose offload exhausts its retries (fault injection) is marked
failed and its partition is re-executed on the least-loaded surviving
device, falling back to the host when none remain.
"""

from dataclasses import dataclass, field, replace

from repro.context import ExecutionContext
from repro.core import DeviceLoad, ExecutionStrategy
from repro.cluster.partition import Partitioner
from repro.engine.cooperative import CooperativeExecutor
from repro.engine.counters import WorkCounters
from repro.engine.ndp import NDPEngine
from repro.engine.results import ExecutionReport, TimelinePhase
from repro.engine.timing import ExecutionLocation
from repro.errors import DeviceOverloadError, ReproError
from repro.faults import FAULTS_TRACK
from repro.sim import HOST_RESOURCE, ClusterSimContext
from repro.storage.topology import Topology


@dataclass(frozen=True)
class ClusterFaultPlan:
    """Per-device fault plans for a cluster run.

    ``plans`` maps device index to a :class:`~repro.faults.FaultPlan`;
    devices without an entry get ``default`` (``None`` = no faults).
    Passing a plain ``FaultPlan`` as ``ExecutionContext.faults`` instead
    applies it to every device (each device still draws its own
    injector, hence its own RNG stream).
    """

    plans: dict = field(default_factory=dict)
    default: object = None

    def plan_for(self, index):
        """The fault plan device ``index`` runs under (may be None)."""
        return self.plans.get(index, self.default)


def _add_counters(total, extra):
    for name, value in extra.as_dict().items():
        setattr(total, name, getattr(total, name) + value)
    return total


class _Partition:
    """One shard's execution state inside a scatter-gather run."""

    def __init__(self, index, shard, split_index):
        self.index = index
        self.shard = shard
        self.split_index = split_index
        self.placement = None       # "Hk@dJ" | "host" | "host-fallback" | "empty"
        self.device = None          # device index, None for host/empty
        self.attempted = []         # device indexes that failed this shard
        self.rows = None            # pre-finalize joined rows
        self.completed_at = None
        self.retries = 0
        self.host_counters = None
        self.device_counters = None
        self.timeline = ()
        self.batches = 0
        self.intermediate_rows = 0
        self.intermediate_bytes = 0
        self.setup_time = 0.0
        self.host_wait_initial = 0.0
        self.host_wait_other = 0.0
        self.transfer_time = 0.0
        self.host_processing = 0.0
        self.device_busy_time = 0.0
        self.device_stall_time = 0.0
        self.wasted_time = 0.0

    def describe(self):
        return {
            "partition": self.index,
            "placement": self.placement,
            "device": self.device,
            "shard": self.shard.describe() if self.shard is not None
            else "all",
            "rows": len(self.rows) if self.rows is not None else None,
            "completed_at": self.completed_at,
            "retries": self.retries,
            "attempted_devices": list(self.attempted),
        }


class DeviceCluster:
    """``n`` smart-storage devices over one environment's mirrored store.

    Built from an :class:`~repro.workloads.loader.Environment` plus a
    cluster :class:`~repro.storage.topology.Topology` (constructed here
    when not given): every device shares the environment's flash,
    database and catalog but owns its PCIe link, NDP core and DRAM
    budget, so each gets its own :class:`~repro.engine.ndp.NDPEngine`
    and :class:`~repro.engine.cooperative.CooperativeExecutor` around
    the shared host engine and timing model.
    """

    def __init__(self, env, n_devices=None, partitioner=None,
                 topology=None):
        if topology is None:
            if n_devices is None:
                raise ReproError(
                    "DeviceCluster needs n_devices or a cluster topology")
            topology = Topology.cluster(
                n_devices, partitioner=partitioner,
                device_spec=env.device.spec, host_spec=env.runner.host_spec,
                flash=env.device.flash, link=env.device.link)
        elif n_devices is not None and topology.n_devices != n_devices:
            raise ReproError(
                f"topology has {topology.n_devices} devices, "
                f"n_devices={n_devices} disagrees")
        self.env = env
        self.topology = topology
        self.devices = topology.devices
        spec = topology.partitioning
        if spec is None:
            spec = Topology.cluster(topology.n_devices).partitioning
        self.partitioner = Partitioner.fit(
            spec.kind, topology.n_devices, env.catalog, seed=spec.seed)
        host = env.runner.cooperative.host
        timing = env.runner.timing
        ndp_config = env.runner.ndp_engine.config
        self.executors = [
            CooperativeExecutor(
                host,
                NDPEngine(env.catalog, env.database, device, ndp_config),
                timing)
            for device in self.devices
        ]
        self.host = host
        self.timing = timing
        self.executor = ScatterGatherExecutor(self)

    @property
    def n_devices(self):
        """How many devices the cluster has."""
        return len(self.devices)

    def run(self, query, ctx=None, split_index=None):
        """Scatter-gather ``query`` across the cluster (see executor)."""
        return self.executor.run(query, ctx=ctx, split_index=split_index)

    def device_load(self, kernel, index):
        """Device ``index``'s :class:`~repro.core.DeviceLoad` snapshot."""
        def _utilization(resource):
            horizon = max(kernel.now, resource.free_at)
            if horizon <= 0:
                return 0.0
            return min(1.0, resource.busy_time / horizon)

        device = self.devices[index]
        return DeviceLoad(
            core_utilization=_utilization(kernel.cores[index]),
            link_utilization=_utilization(kernel.links[index]),
            reserved_fraction=(device.reserved_bytes
                               / max(1, device.buffer_budget)),
        )


class _RunState:
    """Mutable state of one scatter-gather run."""

    def __init__(self, plan, ctx, kernel, tracer, partitions):
        self.plan = plan
        self.ctx = ctx
        self.kernel = kernel
        self.tracer = tracer
        self.partitions = partitions
        self.failed_devices = set()
        self.failures = []           # audit of abandoned offloads


class ScatterGatherExecutor:
    """Runs one query as concurrent per-shard splits plus a host merge."""

    def __init__(self, cluster):
        self.cluster = cluster

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, query, ctx=None, split_index=None):
        """Execute ``query`` (SQL or plan) across the whole cluster.

        Returns a merged :class:`~repro.engine.results.ExecutionReport`
        whose rows are identical to single-device serial execution;
        ``report.cluster`` records the per-partition placements,
        ``report.resource_stats`` has one link/core pair per device.
        ``split_index`` pins every device partition to Hk; by default
        each partition runs the planner's load-aware choice.
        """
        ctx = ExecutionContext.coerce(ctx)
        cluster = self.cluster
        env = cluster.env
        plan = env.runner.plan(query) if isinstance(query, str) else query
        n = cluster.n_devices
        kernel = ClusterSimContext.fresh(n, tracer=ctx.tracer)
        tracer = ctx.sim_tracer()

        driving = plan.entries[0].table_name
        if n == 1:
            # Single device: no shard restriction at all, so the device
            # fragment is byte-identical to the serial hybrid path.
            shards = [None]
        else:
            shards = cluster.partitioner.shards(driving)

        partitions = []
        for index, shard in enumerate(shards):
            split = self._partition_split(plan, kernel, index, split_index)
            partitions.append(_Partition(index, shard, split))
        state = _RunState(plan, ctx, kernel, tracer, partitions)

        for part in partitions:
            if part.shard is not None and part.shard.is_empty:
                part.placement = "empty"
                part.rows = []
                part.completed_at = 0.0
                continue
            if part.split_index is None:
                self._start_host(state, part, at=0.0)
            else:
                self._start_device(state, part, part.index, at=0.0)

        kernel.loop.run()
        unfinished = [part.index for part in partitions
                      if part.rows is None]
        if unfinished:
            raise ReproError(
                f"scatter-gather drained with unfinished partitions: "
                f"{unfinished}")
        return self._merge(state)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _partition_split(self, plan, kernel, index, split_index):
        """The Hk each partition runs, or None for host placement."""
        if split_index is not None:
            return min(split_index, plan.table_count - 1)
        load = self.cluster.device_load(kernel, index)
        decision = self.cluster.env.planner.decide(plan, device_load=load)
        if decision.strategy is ExecutionStrategy.HOST_ONLY:
            return None
        split = decision.split_index
        if decision.strategy is ExecutionStrategy.FULL_NDP or split is None:
            # Full NDP would finalize on-device; the cluster must merge
            # partitions before finalizing, so run the deepest hybrid
            # split instead (whole join pipeline on-device, epilogue
            # deferred to the gather).
            split = plan.table_count - 1
        return min(split, plan.table_count - 1)

    def _ctx_for(self, ctx, device_index):
        """The context device ``device_index`` executes under."""
        if isinstance(ctx.faults, ClusterFaultPlan):
            return replace(ctx, faults=ctx.faults.plan_for(device_index))
        return ctx

    def _start_device(self, state, part, device_index, at):
        """Stage and start ``part`` on device ``device_index``."""
        executor = self.cluster.executors[device_index]
        ctx = self._ctx_for(state.ctx, device_index)
        label = (f"p{part.index}" if device_index == part.index
                 else f"p{part.index}@d{device_index}")
        try:
            prepared = executor.prepare_split(
                state.plan, part.split_index, ctx,
                kernel=state.kernel.view(device_index),
                trace_label=f"d{device_index}/{label}",
                shard=part.shard, finalize=False)
        except DeviceOverloadError:
            # The shard's pipeline does not fit this device's DRAM
            # budget; the shard runs on the host instead.
            self._start_host(state, part, at=at)
            return
        part.device = device_index
        part.placement = f"H{part.split_index}@d{device_index}"
        prepared.start(
            at,
            on_complete=lambda sim, part=part, prepared=prepared:
                self._device_done(state, part, prepared, sim),
            on_abandon=lambda sim, error, part=part, prepared=prepared:
                self._device_abandoned(state, part, prepared, error))

    def _device_done(self, state, part, prepared, sim):
        part.rows = list(sim.joined_rows)
        part.completed_at = sim.host_end
        part.host_counters = prepared.host_counters
        part.device_counters = prepared.execution.counters
        part.timeline = list(sim.timeline)
        part.batches = prepared.n_batches
        part.intermediate_rows = prepared.intermediate_rows
        part.intermediate_bytes = (prepared.intermediate_rows
                                   * prepared.row_bytes)
        part.setup_time = prepared.setup_time
        part.host_wait_initial = sim.host_wait_initial
        part.host_wait_other = sim.host_wait_other
        part.transfer_time = sim.transfer_total
        part.host_processing = sim.host_processing
        part.device_busy_time = prepared.device_time
        part.device_stall_time = sim.device_stall
        part.retries += sim.retries
        part.wasted_time += sim.wasted_time
        prepared.release()

    def _device_abandoned(self, state, part, prepared, error):
        """Single-device failure: re-execute the shard elsewhere.

        The failed device is excluded from all further placement; the
        partition restarts from scratch on the least-loaded surviving
        device (bounded by the device count), then on the host.
        """
        now = state.kernel.now
        prepared.release()
        part.retries += error.retries
        part.wasted_time += error.wasted_time
        part.attempted.append(part.device)
        state.failed_devices.add(part.device)
        state.failures.append({
            "partition": part.index,
            "device": part.device,
            "at": now,
            "retries": error.retries,
            "error": str(error),
        })
        if state.tracer.enabled:
            state.tracer.instant(
                FAULTS_TRACK, f"device {part.device} failed", now,
                args={"partition": part.index, "retries": error.retries})
        survivors = [
            j for j in range(self.cluster.n_devices)
            if j not in state.failed_devices and j not in part.attempted
        ]
        if survivors:
            target = min(
                survivors,
                key=lambda j: (state.kernel.cores[j].free_at, j))
            self._start_device(state, part, target, at=now)
        else:
            self._start_host(state, part, at=now, fallback=True)

    def _start_host(self, state, part, at, fallback=False):
        """Run ``part``'s shard host-only, serialized on the shared CPU.

        The rows come from an eager native-path pipeline run over the
        shard (identical to the device path's pre-finalize rows by
        construction); the shared CPU resource then prices when that
        service time actually fits between the other partitions' host
        work.
        """
        kernel = state.kernel
        counters = WorkCounters()
        rows, _row_bytes = self.cluster.host.run_pipeline(
            state.plan, counters, driving_shard=part.shard)
        service, _ = self.cluster.timing.charge(counters,
                                                ExecutionLocation.HOST)
        begin, end = kernel.cpu.acquire(
            at, service, label=f"host partition {part.index}")
        part.placement = "host-fallback" if fallback else "host"
        part.device = None
        part.rows = rows
        part.completed_at = end
        part.host_counters = counters
        part.host_processing = service
        part.timeline = [
            TimelinePhase("host", "compute", begin, end,
                          f"partition {part.index} (host)",
                          resource=HOST_RESOURCE),
        ]
        if state.tracer.enabled:
            state.tracer.span(
                f"exec/p{part.index}", part.placement, begin, end,
                category="execution",
                args={"partition": part.index, "service_time": service})

    # ------------------------------------------------------------------
    # Gather
    # ------------------------------------------------------------------
    def _merge(self, state):
        """Concatenate partitions in order, finalize once, build report."""
        cluster = self.cluster
        kernel = state.kernel
        partitions = state.partitions
        merged_rows = []
        for part in partitions:          # partition order => deterministic
            merged_rows.extend(part.rows)
        merge_counters = WorkCounters()
        result = cluster.host.finalize_fragment(state.plan, merged_rows,
                                                merge_counters)
        merge_time, _ = cluster.timing.charge(merge_counters,
                                              ExecutionLocation.HOST)
        gather_at = max([kernel.now]
                        + [part.completed_at for part in partitions])
        begin, end = kernel.cpu.acquire(gather_at, merge_time,
                                        label="gather-merge")
        total = max(end, kernel.horizon)
        if state.tracer.enabled:
            state.tracer.span("exec/gather", "gather-merge", begin, end,
                              category="execution",
                              args={"rows_in": len(merged_rows),
                                    "rows_out": len(result.rows)})

        host_counters = WorkCounters()
        device_counters = WorkCounters()
        for part in partitions:
            if part.host_counters is not None:
                _add_counters(host_counters, part.host_counters)
            if part.device_counters is not None:
                _add_counters(device_counters, part.device_counters)
        _add_counters(host_counters, merge_counters)

        timeline = []
        for part in partitions:
            timeline.extend(part.timeline)
        timeline.append(TimelinePhase("host", "compute", begin, end,
                                      "gather-merge",
                                      resource=HOST_RESOURCE))
        timeline.sort(key=lambda phase: (phase.start, phase.end))

        device_parts = [part for part in partitions
                        if part.device is not None]
        split_label = (f"H{device_parts[0].split_index}" if device_parts
                       else "host")
        report = ExecutionReport(
            strategy=f"scatter-gather[{cluster.n_devices}x{split_label}]",
            total_time=total,
            result=result,
            split_index=(device_parts[0].split_index if device_parts
                         else None),
            host_counters=host_counters,
            device_counters=device_counters,
            setup_time=sum(part.setup_time for part in partitions),
            host_wait_initial=sum(part.host_wait_initial
                                  for part in partitions),
            host_wait_other=sum(part.host_wait_other
                                for part in partitions),
            transfer_time=sum(part.transfer_time for part in partitions),
            host_processing_time=(sum(part.host_processing
                                      for part in partitions)
                                  + merge_time),
            device_busy_time=sum(part.device_busy_time
                                 for part in partitions),
            device_stall_time=sum(part.device_stall_time
                                  for part in partitions),
            batches=sum(part.batches for part in partitions),
            intermediate_rows=sum(part.intermediate_rows
                                  for part in partitions),
            intermediate_bytes=sum(part.intermediate_bytes
                                   for part in partitions),
            timeline=timeline,
            resource_stats=kernel.resource_stats(total),
            trace_metrics=state.tracer.metrics(),
            cluster={
                "n_devices": cluster.n_devices,
                "partitioner": cluster.partitioner.describe(),
                "driving_table": state.plan.entries[0].table_name,
                "merge_time": merge_time,
                "partitions": [part.describe() for part in partitions],
                "failed_devices": sorted(state.failed_devices),
                "failures": state.failures,
            },
        )
        retries = sum(part.retries for part in partitions)
        if retries:
            report.retries = retries
            report.wasted_device_time = sum(part.wasted_time
                                            for part in partitions)
        return report
