"""Multi-device scale-out (scatter-gather cooperative execution).

One host drives ``n`` smart-storage devices over mirrored storage: a
seed-deterministic :class:`Partitioner` splits each query's driving-scan
responsibility into per-device shards, every device runs its shard's
hybridNDP split concurrently on one shared simulation kernel, and the
host merges the partial results with a single finalize.  See
``docs/cluster.md``.
"""

from repro.cluster.cluster import (ClusterFaultPlan, DeviceCluster,
                                   ScatterGatherExecutor,
                                   SpeculationPolicy)
from repro.cluster.partition import Partitioner, TableShard

__all__ = ["DeviceCluster", "ScatterGatherExecutor", "ClusterFaultPlan",
           "SpeculationPolicy", "Partitioner", "TableShard"]
