"""Fig 13 — quality of the hybridNDP offloading decision.

Paper shape: the optimizer picks the best strategy in ~20.35% of
queries and an acceptable one in ~11.5% more (~31.8% suitable overall),
without injected selectivities.
"""

from repro.bench.experiments import exp3_decisions_fig13
from repro.bench.reporting import render_family_grid


def test_fig13_decisions(benchmark, job_env, job_matrix):
    result = benchmark.pedantic(
        lambda: exp3_decisions_fig13(job_env, job_matrix),
        iterations=1, rounds=1)
    print()
    print("Fig 13 — planner decisions")
    print(render_family_grid(result["per_query"],
                             legend="b=best a=acceptable m=miss"))
    print()
    print(f"best:       {result['best']} ({result['best_pct']:.1f}%) "
          f"(paper: ~20.35%)")
    print(f"acceptable: {result['acceptable']} "
          f"({result['acceptable_pct']:.1f}%) (paper: ~11.5%)")
    print(f"suitable:   {result['suitable_pct']:.1f}% (paper: ~31.8%)")

    assert result["total"] >= 20
    # The decision should be suitable for a meaningful share of queries,
    # and must not be perfect (estimates are sample-based by design).
    assert result["suitable_pct"] >= 15.0
    assert result["miss"] > 0
