"""Ablation (§2.2) — leveled vs tiered compaction under the JOB load.

The paper's substrate uses RocksDB-style compaction ("tiered or
leveled").  This bench loads the same skewed update stream under both
strategies and reports the classic trade-off: tiered writes less
(lower write amplification), leveled reads less (lower read
amplification, fewer runs per GET).
"""

import random

from repro.bench.reporting import format_table
from repro.lsm.store import LSMConfig, LSMTree
from repro.storage.flash import FlashDevice

from benchmarks.conftest import run_once

_N_WRITES = 6000
_KEYSPACE = 600


def _load(strategy):
    config = LSMConfig(memtable_size=2048, level_base_bytes=8192,
                       sst_target_bytes=4096, block_size=1024,
                       compaction=strategy, tiered_fanout=4)
    tree = LSMTree(config=config, flash=FlashDevice())
    rng = random.Random(11)
    for i in range(_N_WRITES):
        key = f"key-{rng.randrange(_KEYSPACE):05d}".encode()
        tree.put(key, f"value-{i}".encode().ljust(40, b"."))
    tree.freeze_and_flush()
    return tree


def test_ablation_compaction(benchmark):
    def load_both():
        return _load("leveled"), _load("tiered")

    leveled, tiered = run_once(benchmark, load_both)
    probe = b"key-00007"
    rows = []
    for name, tree in (("leveled", leveled), ("tiered", tiered)):
        stats = tree.compactor.stats
        rows.append([
            name,
            stats.compactions,
            f"{stats.bytes_written:,}",
            tree.levels.sst_count(),
            tree.read_amplification(probe),
        ])
    print()
    print(format_table(
        ["strategy", "compactions", "bytes written", "SSTs",
         "read amp (components/GET)"],
        rows, title="Ablation — compaction strategy trade-off"))

    assert (tiered.compactor.stats.bytes_written
            < leveled.compactor.stats.bytes_written)
    assert (tiered.read_amplification(probe)
            >= leveled.read_amplification(probe))
    # Both must serve identical data.
    assert dict(tiered.scan()) == dict(leveled.scan())
