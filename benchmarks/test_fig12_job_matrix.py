"""Fig 12 — the JOB matrix: host-only vs H0..Hx vs full NDP per query.

Paper shape: hybridNDP outperforms or is on par with host-only in ~47%
of the 113 queries (up to 4.2x), full-NDP best in only ~1.7%, leaf-only
H0 best in ~7%.  The quick run uses a representative subset; set
REPRO_FULL_JOB=1 for the complete benchmark.
"""

from repro.bench.experiments import classify_matrix
from repro.bench.reporting import (format_table, render_family_grid,
                                   render_matrix_summary)


def test_fig12_job_matrix(benchmark, job_matrix):
    summary = benchmark.pedantic(lambda: classify_matrix(job_matrix),
                                 iterations=1, rounds=1)
    rows = []
    for name, times in sorted(job_matrix.items()):
        host = times["host-only"]
        hybrids = {k: v for k, v in times.items()
                   if v is not None and k.startswith("H")}
        best_name = min(hybrids, key=lambda k: hybrids[k]) if hybrids else "-"
        best = hybrids.get(best_name)
        rows.append([
            name,
            f"{host * 1e3:.2f}",
            best_name,
            f"{best * 1e3:.2f}" if best else "-",
            f"{host / best:.2f}x" if best else "-",
            summary["per_query"].get(name, "-"),
        ])
    print()
    print(format_table(
        ["query", "host [ms]", "best split", "best [ms]", "speedup",
         "class"],
        rows, title="Fig 12 — JOB strategy matrix"))
    print()
    print(render_family_grid(summary["per_query"],
                             legend="g=green y=yellow r=red"))
    print()
    print(render_matrix_summary(summary))

    assert summary["total"] >= 20
    # Shape assertions, generous bands around the paper's numbers.
    assert summary["green_yellow_pct"] >= 30.0
    assert summary["max_speedup"] >= 1.2
    assert summary["full_ndp_best_pct"] <= 25.0
