"""Table 4 — host/device processing distribution for JOB Q8d at H2.

Paper shape (left): NDP setup ~0%, initial wait ~22%, later waits and
result transfer ~0%, processing ~78%.  (right): memcmp is the largest
on-device component (45.6%), followed by internal-key compares.
"""

from repro.bench.experiments import exp6_table4
from repro.bench.reporting import format_table

from benchmarks.conftest import run_once


def test_tab04_breakdown(benchmark, job_env):
    result = run_once(benchmark,
                      lambda: exp6_table4(job_env, "8d", split_index=2))
    host_rows = [[stage, f"{share:.2f}%"]
                 for stage, share in result["host_stages"].items()]
    device_rows = [[op, f"{share:.2f}%"]
                   for op, share in sorted(
                       result["device_operations"].items(),
                       key=lambda kv: -kv[1])]
    print()
    print(format_table(["host stage", "share"], host_rows,
                       title=f"Table 4 (left) — Q{result['query']} "
                             f"{result['split']} host distribution"))
    print()
    print(format_table(["device operation", "share"], device_rows,
                       title="Table 4 (right) — device distribution"))

    host = result["host_stages"]
    # Setup is negligible; initial wait is a visible chunk; processing
    # dominates the host side.
    assert host["ndp_setup"] < 5.0
    assert host["processing"] > host["wait_subsequent"]
    device = result["device_operations"]
    assert sum(device.values()) == 0 or (
        abs(sum(device.values()) - 100.0) < 1e-6)
