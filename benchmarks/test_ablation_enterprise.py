"""Ablation (§7 discussion) — enterprise-class smart storage.

The paper argues that enterprise devices (16-24 cores, more DRAM,
~500-1000 EUR/TB) can carry more computationally intensive work, so the
offloading balance shifts toward the device.  This bench runs the same
split sweep on the consumer COSMOS+ profile and an enterprise profile:
late splits and full NDP must become relatively cheaper on the stronger
device.
"""

import pytest

from repro.bench.experiments import exp6_split_sweep_fig16
from repro.bench.reporting import format_table, ms
from repro.storage.machines import enterprise_device
from repro.workloads.loader import build_environment

from benchmarks.conftest import run_once


@pytest.fixture(scope="module")
def enterprise_env():
    return build_environment(scale=0.0004, seed=7,
                             device_spec=enterprise_device())


def test_ablation_enterprise(benchmark, job_env, enterprise_env):
    def sweep_both():
        return (exp6_split_sweep_fig16(job_env, "8c"),
                exp6_split_sweep_fig16(enterprise_env, "8c"))

    consumer, enterprise = run_once(benchmark, sweep_both)
    rows = []
    for name in consumer["times"]:
        c = consumer["times"][name]
        e = enterprise["times"][name]
        rows.append([name,
                     ms(c) if c is not None else "-",
                     ms(e) if e is not None else "-"])
    print()
    print(format_table(
        ["strategy", "COSMOS+ [ms]", "enterprise [ms]"],
        rows, title="Ablation — device class vs split sweep (Q8c)"))

    # The strong device executes the full-NDP plan much faster...
    assert enterprise["times"]["ndp-only"] < consumer["times"]["ndp-only"]
    # ...and its relative penalty vs host-only shrinks.
    c_ratio = consumer["times"]["ndp-only"] / consumer["times"]["block-only"]
    e_ratio = (enterprise["times"]["ndp-only"]
               / enterprise["times"]["block-only"])
    assert e_ratio < c_ratio
