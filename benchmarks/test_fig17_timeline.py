"""Fig 17 — overlapping execution of JOB Q8d.

Paper shape: after the NDP command, the host waits for the first
intermediate results; once they arrive host and device work in
parallel, with (nearly) no further host waiting at the optimal split.
"""

from repro.bench.experiments import exp6_timeline_fig17
from repro.bench.reporting import format_table, ms

from benchmarks.conftest import run_once


def test_fig17_timeline(benchmark, job_env):
    result = run_once(benchmark,
                      lambda: exp6_timeline_fig17(job_env, "8d"))
    rows = [[actor, kind, f"{start * 1e3:.3f}", f"{end * 1e3:.3f}", label]
            for actor, kind, start, end, label in result["timeline"][:24]]
    print()
    print(format_table(
        ["actor", "kind", "start [ms]", "end [ms]", "label"],
        rows,
        title=(f"Fig 17 — Q{result['query']} {result['split']} timeline "
               f"(first 24 phases, total {ms(result['total_time'])} ms)")))
    print(f"host wait initial: {ms(result['host_wait_initial'])} ms, "
          f"subsequent: {ms(result['host_wait_other'])} ms, "
          f"device stall: {ms(result['device_stall'])} ms")

    assert result["host_wait_initial"] > 0
    kinds = {(actor, kind) for actor, kind, *_ in result["timeline"]}
    assert ("device", "compute") in kinds
    assert ("host", "compute") in kinds
    assert ("host", "transfer") in kinds
    # Overlap: some device compute phase must start before the host's
    # last compute phase begins.
    host_compute = [p for p in result["timeline"]
                    if p[0] == "host" and p[1] == "compute"]
    device_compute = [p for p in result["timeline"]
                      if p[0] == "device" and p[1] == "compute"]
    if len(device_compute) > 1:
        assert device_compute[-1][2] >= host_compute[0][2]
