"""Ablation (§5 setup) — on-device buffer-size sensitivity.

The paper tunes the NDP pipeline buffers and finds that smaller buffers
cause more frequent refreshes: a BNL join needs >= 512 KB of join
buffer to perform reasonably, while BNLI joins are less affected.  This
bench sweeps absolute join-buffer sizes for a BNL-heavy join with a
large outer input (movie_link pinned to 2000 rows so the outer really
spans many buffer blocks).
"""

import pytest

from repro.bench.experiments import force_bnlj
from repro.bench.reporting import format_table, ms
from repro.engine.ndp import NDPEngineConfig
from repro.engine.stacks import Stack, StackRunner
from repro.workloads.job_queries import LISTING2_FULL_PROJECTION
from repro.workloads.loader import build_environment

from benchmarks.conftest import run_once

_BUFFER_SIZES = [64 * 1024, 8 * 1024, 2 * 1024, 512]


@pytest.fixture(scope="module")
def env():
    return build_environment(scale=0.0008, seed=7,
                             secondary_indexes=False,
                             table_overrides=(("movie_link", 2000),))


def _time_with_buffer(env, join_buffer):
    runner = StackRunner(
        env.catalog, env.database, env.device,
        buffer_scale=env.buffer_scale,
        ndp_config=NDPEngineConfig(buffer_scale=env.buffer_scale,
                                   join_buffer_override=join_buffer))
    plan = force_bnlj(runner.plan(LISTING2_FULL_PROJECTION))
    return runner.run(plan, Stack.NDP).total_time


def test_ablation_join_buffer(benchmark, env):
    def sweep():
        return {size: _time_with_buffer(env, size)
                for size in _BUFFER_SIZES}

    times = run_once(benchmark, sweep)
    rows = [[f"{size / 1024:.1f} KB", ms(times[size])]
            for size in _BUFFER_SIZES]
    print()
    print(format_table(["BNL join buffer", "NDP time [ms]"],
                       rows, title="Ablation — BNL join-buffer size"))

    ordered = [times[size] for size in _BUFFER_SIZES]
    # Shrinking the buffer must never help...
    for larger, smaller in zip(ordered, ordered[1:]):
        assert smaller >= larger * 0.99
    # ...and the smallest buffer must clearly hurt (inner re-scans).
    assert ordered[-1] > 1.5 * ordered[0]
