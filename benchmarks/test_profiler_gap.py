"""§5 setup check — the CoreMark-style compute gap and profiler output.

Paper: host 92343 it/s vs one COSMOS+ ARM core 2964 it/s (~31x), PCIe
2.0 x8, device-internal flash faster than the external path.
"""

from repro.bench.experiments import profiler_compute_gap
from repro.bench.reporting import format_table

from benchmarks.conftest import run_once


def test_profiler_gap(benchmark, job_env):
    result = run_once(benchmark, lambda: profiler_compute_gap(job_env))
    print()
    print(format_table(
        ["metric", "value"],
        [["host eval rate [ops/s]", f"{result['host_rate']:.3e}"],
         ["device eval rate [ops/s]", f"{result['device_rate']:.3e}"],
         ["compute gap", f"{result['gap']:.1f}x (paper: ~31.2x)"],
         ["PCIe bandwidth [GB/s]",
          f"{result['pcie_bandwidth'] / 1e9:.2f}"],
         ["internal page rate [pages/s]",
          f"{result['internal_page_rate']:.0f}"],
         ["external page rate [pages/s]",
          f"{result['external_page_rate']:.0f}"]],
        title="Hardware profiler (paper §3.1 / §5)"))
    assert 25 <= result["gap"] <= 40
    assert result["internal_page_rate"] > result["external_page_rate"]
    assert 2.5e9 <= result["pcie_bandwidth"] <= 4.0e9
