"""Fig 16 — forcing every split position for JOB Q8c.

Paper shape: nine strategies (block-only, H0..H6, NDP-only); early
splits shift work to the host, late splits overload the device, H3 is
the optimum.
"""

from repro.bench.experiments import exp6_split_sweep_fig16
from repro.bench.reporting import format_table, ms

from benchmarks.conftest import run_once


def test_fig16_split_sweep(benchmark, job_env):
    result = run_once(benchmark,
                      lambda: exp6_split_sweep_fig16(job_env, "8c"))
    times = result["times"]
    print()
    print(format_table(
        ["strategy", "time [ms]"],
        [[name, ms(value) if value is not None else "infeasible"]
         for name, value in times.items()],
        title=f"Fig 16 — Q{result['query']} split sweep"))

    # Q8c has 7 tables -> block-only, H0..H6, ndp-only = 9 strategies.
    assert len(times) == 9
    hybrid_times = {k: v for k, v in times.items()
                    if k.startswith("H") and v is not None}
    best = min(hybrid_times, key=lambda k: hybrid_times[k])
    best_index = int(best[1:])
    assert 0 < best_index < 6, f"optimum should be interior, got {best}"
    assert hybrid_times[best] < times["block-only"]
    assert hybrid_times[best] < times["ndp-only"]
