"""Extension — in-situ GROUP BY / aggregation offload (§2.1).

nKV executes GROUP BY and aggregation functions on-device, letting a
complete NDP pipeline reduce a large input to a handful of groups
before anything crosses PCIe.  This bench aggregates movie_info genres:
the NDP stack ships only the group table, the host stacks move the
input; the size-reducing aggregation is NDP's best case.
"""

from repro.bench.reporting import format_table, ms
from repro.engine.stacks import Stack

from benchmarks.conftest import run_once

GROUP_BY_SQL = """SELECT mi.info, COUNT(*) AS n
FROM info_type AS it, movie_info AS mi
WHERE it.info = 'genres'
  AND it.id = mi.info_type_id
GROUP BY mi.info"""


def test_ext_groupby_offload(benchmark, job_env):
    def run_all():
        return {
            "blk": job_env.run(GROUP_BY_SQL, Stack.BLK),
            "native": job_env.run(GROUP_BY_SQL, Stack.NATIVE),
            "ndp": job_env.run(GROUP_BY_SQL, Stack.NDP),
        }

    reports = run_once(benchmark, run_all)
    rows = [[name, ms(report.total_time), len(report.result)]
            for name, report in reports.items()]
    print()
    print(format_table(["stack", "time [ms]", "groups"],
                       rows, title="Extension — GROUP BY offload"))

    baseline = reports["blk"].result.sorted_rows()
    for name, report in reports.items():
        assert report.result.sorted_rows() == baseline, name
    # The aggregation is size-reducing: on-device execution must at
    # least compete with the native host path.
    assert reports["ndp"].total_time <= reports["native"].total_time * 1.3
    # The device returns a small group table, not the input.
    assert len(reports["ndp"].result) < 40
    assert reports["ndp"].intermediate_rows >= len(reports["ndp"].result)
