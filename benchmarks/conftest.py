"""Benchmark fixtures.

Environments are session-scoped (the dataset loads once).  The full
113-query Fig-12 matrix is expensive; by default a representative subset
runs — set ``REPRO_FULL_JOB=1`` to sweep the complete benchmark, as the
EXPERIMENTS.md numbers were produced.
"""

import os

import pytest

from repro.workloads.job_queries import all_queries
from repro.workloads.loader import build_environment

#: One query per JOB family area, spanning 4..14 tables.
QUICK_QUERY_SET = ["1a", "2d", "3b", "4a", "5c", "6b", "7a", "8c", "8d",
                   "10a", "11a", "13b", "14a", "16b", "17b", "17e", "19d",
                   "21a", "22c", "25b", "28a", "32a", "33c"]


def selected_queries():
    """Query names for the Fig-12/13 sweep (full set when requested)."""
    if os.environ.get("REPRO_FULL_JOB"):
        return sorted(all_queries())
    return list(QUICK_QUERY_SET)


@pytest.fixture(scope="session")
def job_env():
    """Indexed JOB environment (most experiments)."""
    return build_environment(scale=0.0004, seed=7)


@pytest.fixture(scope="session")
def job_env_noindex():
    """Index-less environment (Experiment 4)."""
    return build_environment(scale=0.0008, seed=7,
                             secondary_indexes=False)


@pytest.fixture(scope="session")
def job_env_exp5():
    """Indexed environment at Exp-4/5 scale (Experiment 5)."""
    return build_environment(scale=0.0008, seed=7,
                             secondary_indexes=True)


@pytest.fixture(scope="session")
def job_matrix(job_env):
    """The Exp-2 strategy matrix, shared by Fig 12 and Fig 13.

    Set ``REPRO_SWEEP_WORKERS=N`` to shard the sweep over N processes;
    the matrix is identical to the serial sweep.
    """
    from repro.bench.experiments import exp2_job_matrix_fig12
    from repro.bench.parallel import default_workers
    return exp2_job_matrix_fig12(job_env, query_names=selected_queries(),
                                 workers=default_workers())


def run_once(benchmark, func):
    """Benchmark a deterministic experiment with a single round."""
    return benchmark.pedantic(func, iterations=1, rounds=1)
