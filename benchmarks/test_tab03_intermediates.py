"""Table 3 — correlation of intermediate results and execution times
for JOB Q17b across the split positions."""

from repro.bench.experiments import exp1_table3
from repro.bench.reporting import format_table, ms

from benchmarks.conftest import run_once


def test_tab03_intermediates(benchmark, job_env):
    result = run_once(benchmark, lambda: exp1_table3(job_env))
    rows = []
    for entry in result["rows"]:
        if "error" in entry:
            rows.append([entry["split"], "-", "-", "-", entry["error"]])
            continue
        rows.append([entry["split"], entry["intermediate_rows"],
                     entry["batches"], ms(entry["time"]),
                     ms(entry["host_wait"])])
    print()
    print(format_table(
        ["split", "intermediate rows", "batches", "time [ms]",
         "host wait [ms]"],
        rows, title=f"Table 3 — Q{result['query']} intermediates vs time"))
    valid = [e for e in result["rows"] if "error" not in e]
    assert len(valid) >= 5
    # Late splits push millions of intermediate comparisons on-device;
    # the intermediate count must vary across splits.
    counts = {e["intermediate_rows"] for e in valid}
    assert len(counts) > 1
