"""Fig 11 — Q8c, Q17b, Q32b on BLK / NATIVE / NDP / hybridNDP.

Paper shape: hybridNDP outperforms all baselines; full NDP is
sub-optimal for 8c and 32b but on par with NATIVE for 17b.
"""

from repro.bench.experiments import exp1_stacks_fig11
from repro.bench.reporting import format_table, ms

from benchmarks.conftest import run_once


def test_fig11_stacks(benchmark, job_env):
    results = run_once(benchmark, lambda: exp1_stacks_fig11(job_env))
    rows = []
    for name, row in results.items():
        rows.append([name, ms(row["blk"]), ms(row["native"]),
                     ms(row["ndp"]), ms(row["hybridndp"]),
                     row["decision"]])
    print()
    print(format_table(
        ["query", "blk [ms]", "native [ms]", "ndp [ms]",
         "hybridNDP [ms]", "decision"],
        rows, title="Fig 11 — stacks comparison"))
    for name, row in results.items():
        assert row["hybridndp"] <= row["blk"] * 1.05, name
    # 17b is NDP-favourable: full NDP roughly on par with NATIVE.
    assert results["17b"]["ndp"] <= results["17b"]["native"] * 1.8
    # 8c is compute-heavy: full NDP clearly worse than host.
    assert results["8c"]["ndp"] > results["8c"]["native"]
