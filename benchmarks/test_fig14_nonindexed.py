"""Fig 14 — the Listing-2 query: join on non-indexed columns.

Paper shape: the NDP stack outperforms the BLK and NATIVE baselines for
both the limited and the full projection, thanks to early selection and
early projection feeding an on-device BNL join.
"""

from repro.bench.experiments import exp4_nonindexed_fig14
from repro.bench.reporting import format_table, ms

from benchmarks.conftest import run_once


def test_fig14_nonindexed(benchmark, job_env_noindex):
    results = run_once(benchmark,
                       lambda: exp4_nonindexed_fig14(job_env_noindex))
    rows = []
    for label, times in results.items():
        rows.append([label, ms(times["blk"]), ms(times["native"]),
                     ms(times["ndp"]),
                     f"{times['blk'] / times['ndp']:.2f}x"])
    print()
    print(format_table(
        ["projection", "blk [ms]", "native [ms]", "ndp [ms]",
         "ndp vs blk"],
        rows, title="Fig 14 — non-indexed join (Listing 2)"))
    for label, times in results.items():
        assert times["ndp"] < times["blk"], label
        assert times["ndp"] < times["native"], label
