"""Fig 2 — introductory experiment: execution alternatives of JOB Q8c.

Paper shape: full NDP is worst, host-only slow, H0 better, a mid split
(H3) best.
"""

from repro.bench.experiments import exp_intro_fig2
from repro.bench.reporting import format_table, ms

from benchmarks.conftest import run_once


def test_fig02_intro(benchmark, job_env):
    result = run_once(benchmark, lambda: exp_intro_fig2(job_env))
    times = result["times"]
    print()
    print(format_table(
        ["strategy", "time [ms]", "vs host-only"],
        [[name, ms(value), f"{times['host-only'] / value:.2f}x"]
         for name, value in times.items()],
        title=f"Fig 2 — Q{result['query']} execution alternatives"))
    mid = [k for k in times if k.startswith("H") and k != "H0"][0]
    assert times[mid] < times["host-only"], "mid split should beat host"
    assert times["full-ndp"] > times[mid], "full NDP should lose to split"
