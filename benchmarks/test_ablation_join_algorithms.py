"""Ablation (§5 setup) — on-device join algorithm choice.

The paper prefers/enforces the BNL join over its grace hash join for a
fair comparison (§5 "Workloads").  This bench runs the same non-indexed
join with all of nKV's algorithms on the device and reports where each
stands; the indexed BNLJI should win, GHJ should beat BNLJ under buffer
pressure, and the classical NLJ should be far behind.
"""

from repro.bench.experiments import force_join
from repro.bench.reporting import format_table, ms
from repro.engine.stacks import Stack
from repro.query.physical import JoinAlgorithm
from repro.workloads.job_queries import LISTING2_LIMITED_PROJECTION

from benchmarks.conftest import run_once


def test_ablation_join_algorithms(benchmark, job_env_exp5):
    env = job_env_exp5

    def sweep():
        times = {}
        plan = env.runner.plan(LISTING2_LIMITED_PROJECTION)
        times["bnlji (optimizer)"] = env.run(plan, Stack.NDP).total_time
        for algorithm in (JoinAlgorithm.BNLJ, JoinAlgorithm.GHJ,
                          JoinAlgorithm.NLJ):
            forced = force_join(env.runner.plan(
                LISTING2_LIMITED_PROJECTION), algorithm)
            times[algorithm.value] = env.run(forced, Stack.NDP).total_time
        return times

    times = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["join algorithm", "NDP time [ms]"],
        [[name, ms(value)] for name, value in times.items()],
        title="Ablation — on-device join algorithms (Listing 2)"))

    assert times["bnlji (optimizer)"] <= times["bnlj"] * 1.35
    assert times["nlj"] > 3 * times["bnlj"]
