"""Fig 15 — in-situ secondary-index processing.

Paper shape: without indexes the on-device BNL join is the bottleneck;
the BNLI join leverages in-situ indexes to outperform (limited
projection) or compete with (full projection) the host engine.
"""

from repro.bench.experiments import exp5_insitu_index_fig15
from repro.bench.reporting import format_table, ms

from benchmarks.conftest import run_once


def test_fig15_insitu_index(benchmark, job_env_exp5):
    results = run_once(benchmark,
                       lambda: exp5_insitu_index_fig15(job_env_exp5))
    rows = []
    for label, times in results.items():
        rows.append([label, ms(times["host"]), ms(times["ndp_bnl"]),
                     ms(times["ndp_bnli"])])
    print()
    print(format_table(
        ["projection", "host [ms]", "NDP BNL [ms]", "NDP BNLI [ms]"],
        rows, title="Fig 15 — in-situ index utilization"))
    for label, times in results.items():
        # BNLI must at least compete with the index-less BNL on device
        # (at simulation scale the 4 KB block granularity does not
        # shrink with the dataset, which blunts BNL's rescan penalty —
        # see EXPERIMENTS.md).
        assert times["ndp_bnli"] <= times["ndp_bnl"] * 1.35, label
        # The headline claim: in-situ index processing keeps the device
        # competitive with the host engine despite the CPU gap.
        assert times["ndp_bnli"] <= times["host"] * 1.5, label
