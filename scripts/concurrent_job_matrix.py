#!/usr/bin/env python3
"""Concurrent JOB workload benchmark: throughput/latency under contention.

    python scripts/concurrent_job_matrix.py [--scale S] [--seed N] \\
        [--workload-seed N] [--queries 1a 8c ...] [--clients 1 2 4 8] \\
        [--think-time T] [--repeat N] [--rate-qps R] \\
        [--output BENCH_concurrency.json]

Runs the closed-loop client-scaling sweep (and an open-loop point when
``--rate-qps`` is given) on one shared simulated device + host, then
writes the summary as ``BENCH_concurrency.json``.  The run is verified
deterministic before writing: the benchmark executes twice with the same
workload seed and the script exits non-zero if the two summaries differ,
so CI can gate on reproducibility.
"""

import argparse
import json
import sys
import time

from repro.bench.concurrency import DEFAULT_QUERIES, concurrency_matrix
from repro.workloads.loader import build_environment


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="concurrent JOB workload throughput/latency benchmark")
    parser.add_argument("--scale", type=float, default=0.0002,
                        help="dataset scale factor (default 0.0002)")
    parser.add_argument("--seed", type=int, default=7,
                        help="dataset seed (default 7)")
    parser.add_argument("--workload-seed", type=int, default=0,
                        help="arrival-process seed (default 0)")
    parser.add_argument("--queries", nargs="*", default=DEFAULT_QUERIES,
                        help=f"JOB query mix (default {DEFAULT_QUERIES})")
    parser.add_argument("--clients", nargs="*", type=int,
                        default=[1, 2, 4, 8],
                        help="closed-loop client counts (default 1 2 4 8)")
    parser.add_argument("--think-time", type=float, default=0.0,
                        help="closed-loop think time in seconds")
    parser.add_argument("--repeat", type=int, default=1,
                        help="replay the query mix this many times")
    parser.add_argument("--rate-qps", type=float, default=None,
                        help="also run an open-loop point at this "
                             "offered rate")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk workload cache directory")
    parser.add_argument("--output", default="BENCH_concurrency.json",
                        help="output JSON path")
    return parser.parse_args(argv)


def main(argv=None):
    args = parse_args(argv)

    start = time.time()
    env = build_environment(scale=args.scale, seed=args.seed,
                            workload_cache_dir=args.cache_dir)
    print(f"environment: scale={args.scale}, {env.total_rows:,} rows "
          f"({time.time() - start:.0f}s)", flush=True)

    def on_result(label, summary):
        latency = summary["latency"]
        print(f"{label:>12}: {summary['queries']:3d} queries  "
              f"qps={summary['queries_per_second']:8.1f}  "
              f"p50={latency['p50'] * 1e3:7.2f} ms  "
              f"p95={latency['p95'] * 1e3:7.2f} ms  "
              f"p99={latency['p99'] * 1e3:7.2f} ms  "
              f"placements={summary['placements']}", flush=True)

    def run_matrix(callback):
        return concurrency_matrix(
            env, query_names=args.queries, client_counts=args.clients,
            think_time=args.think_time, repeat=args.repeat,
            seed=args.workload_seed, rate_qps=args.rate_qps,
            on_result=callback)

    matrix = run_matrix(on_result)
    print("re-running to verify determinism...", flush=True)
    replay = run_matrix(lambda label, summary: None)
    deterministic = (json.dumps(matrix, sort_keys=True)
                     == json.dumps(replay, sort_keys=True))

    payload = {
        "scale": args.scale,
        "seed": args.seed,
        "workload_seed": args.workload_seed,
        "queries": args.queries,
        "repeat": args.repeat,
        "deterministic": deterministic,
        "matrix": matrix,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=1)

    print(f"\ndeterministic={deterministic}; total "
          f"{time.time() - start:.0f}s; results in {args.output}")
    return 0 if deterministic else 1


if __name__ == "__main__":
    sys.exit(main())
