#!/usr/bin/env python3
"""Adaptive re-planning regret bench: adaptive vs static vs oracle.

    python scripts/adaptive_job_matrix.py [--scale S] [--seed N] \\
        [--queries 1a 21b ...] [--rounds N] [--skew X] [--alpha A] \\
        [--error-threshold T] [--output BENCH_adaptive.json]

Primes every query's EWMA correction with a wrong prior (``--skew``
times the true intermediate-result cardinality), then replays the
workload for ``--rounds`` rounds three ways: the measured oracle
placement, the static (no-feedback) decision under the skewed
statistics, and the adaptive runner with mid-query re-planning +
EWMA learning.  Writes the per-round regret series as JSON and exits
non-zero if the adaptive loop regresses — total adaptive regret at or
above static, or last-round regret above first-round — so CI gates on
the feedback loop actually helping.  The whole run is a deterministic
pure simulation: two invocations must produce byte-identical output.
"""

import argparse
import json
import sys
import time

from repro.bench.adaptive import (DEFAULT_QUERIES, DEFAULT_ROUNDS,
                                  DEFAULT_SCALE, DEFAULT_SKEW,
                                  adaptive_matrix)
from repro.workloads.loader import build_environment


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="adaptive re-planning regret bench")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="dataset scale factor "
                             f"(default {DEFAULT_SCALE}, the scale the "
                             "default workload was calibrated at)")
    parser.add_argument("--seed", type=int, default=7,
                        help="dataset seed (default 7)")
    parser.add_argument("--queries", nargs="*", default=DEFAULT_QUERIES,
                        help=f"JOB queries (default {DEFAULT_QUERIES})")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                        help=f"workload rounds (default {DEFAULT_ROUNDS})")
    parser.add_argument("--skew", type=float, default=DEFAULT_SKEW,
                        help="stale-statistics prior: primed correction "
                             f"factor (default {DEFAULT_SKEW})")
    parser.add_argument("--alpha", type=float, default=0.5,
                        help="EWMA weight of each observation "
                             "(default 0.5)")
    parser.add_argument("--error-threshold", type=float, default=2.0,
                        help="breaker cardinality error that triggers a "
                             "revision (default 2.0)")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk workload cache directory")
    parser.add_argument("--output", default="BENCH_adaptive.json",
                        help="output JSON path")
    return parser.parse_args(argv)


def main(argv=None):
    args = parse_args(argv)
    start = time.time()
    env = build_environment(scale=args.scale, seed=args.seed,
                            workload_cache_dir=args.cache_dir)
    print(f"environment: scale={args.scale}, {env.total_rows:,} rows "
          f"({time.time() - start:.0f}s)", flush=True)

    def on_round(index, row):
        replans = sum(cell["replans"]
                      for cell in row["per_query"].values())
        print(f"round {index:2d}: static regret "
              f"{row['static_regret'] * 1e3:8.3f} ms   adaptive regret "
              f"{row['adaptive_regret'] * 1e3:8.3f} ms   "
              f"replans {replans}", flush=True)

    summary = adaptive_matrix(
        env, query_names=args.queries, rounds=args.rounds,
        skew=args.skew, alpha=args.alpha,
        error_threshold=args.error_threshold, on_round=on_round)

    payload = {
        "scale": args.scale,
        "seed": args.seed,
        "queries": args.queries,
        "summary": summary,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)

    totals = summary["totals"]
    print(f"\ntotal static regret   {totals['static_regret'] * 1e3:.3f} ms")
    print(f"total adaptive regret {totals['adaptive_regret'] * 1e3:.3f} ms")
    print(f"first-round {totals['first_round_regret'] * 1e3:.3f} ms -> "
          f"last-round {totals['last_round_regret'] * 1e3:.3f} ms")
    print(f"adaptive_beats_static={totals['adaptive_beats_static']} "
          f"regret_converged={totals['regret_converged']}; "
          f"total {time.time() - start:.0f}s; results in {args.output}")
    healthy = (totals["adaptive_beats_static"]
               and totals["regret_converged"])
    return 0 if healthy else 1


if __name__ == "__main__":
    sys.exit(main())
