#!/usr/bin/env python3
"""Run JOB queries under every chaos scenario and check graceful degradation.

    python scripts/chaos_job_matrix.py [--scale S] [--seed N] \\
        [--fault-seed N] [--queries 1a 8c ...] [--scenario NAME ...] \\
        [--trace-dir DIR] [--output out.json]

For each (query, scenario) cell the harness runs the query fault-free on
the host, fault-free hybrid, and hybrid under the scenario's seeded
:class:`FaultPlan`, then asserts the degraded run returned exactly the
baseline rows within a bounded slowdown.  Exits non-zero if any cell
returned wrong rows or blew the slowdown bound, so CI can gate on it.
``--trace-dir`` writes one fault-annotated Perfetto trace per cell.
"""

import argparse
import json
import sys
import time

from repro.bench.chaos import (ROBUSTNESS_SCENARIOS, SCENARIOS,
                               chaos_matrix, generated_queries)
from repro.workloads.loader import build_environment

DEFAULT_QUERIES = ["1a", "2d", "6b", "8c", "17b", "32a"]
ALL_SCENARIOS = {**SCENARIOS, **ROBUSTNESS_SCENARIOS}


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="JOB chaos matrix: fault injection + degradation checks")
    parser.add_argument("--scale", type=float, default=0.0002,
                        help="dataset scale factor (default 0.0002)")
    parser.add_argument("--seed", type=int, default=7,
                        help="dataset seed (default 7)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="fault-plan seed (default 0)")
    parser.add_argument("--queries", nargs="*", default=DEFAULT_QUERIES,
                        help=f"JOB queries (default {DEFAULT_QUERIES})")
    parser.add_argument("--scenario", dest="scenarios", action="append",
                        default=None,
                        help="run only this scenario (repeatable; "
                             f"known: {', '.join(sorted(ALL_SCENARIOS))}; "
                             "default: the single-device catalogue)")
    parser.add_argument("--generated", type=int, default=0, metavar="N",
                        help="additionally chaos N random sqlgen queries "
                             "(named gen0..genN-1, seeded by --fault-seed)")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk workload cache directory")
    parser.add_argument("--trace-dir", default=None,
                        help="write one fault-annotated Perfetto trace "
                             "per (query, scenario) into this directory")
    parser.add_argument("--output", default="chaos_job_matrix.json",
                        help="output JSON path")
    return parser.parse_args(argv)


def main(argv=None):
    args = parse_args(argv)

    start = time.time()
    env = build_environment(scale=args.scale, seed=args.seed,
                            workload_cache_dir=args.cache_dir)
    print(f"environment: scale={args.scale}, {env.total_rows:,} rows "
          f"({time.time() - start:.0f}s)", flush=True)

    def on_result(summary):
        verdict = "ok" if summary["ok"] else "FAIL"
        print(f"{summary['query']:>4} {summary['scenario']:<20} "
              f"{summary['strategy']:<20} retries={summary['retries']} "
              f"faulted={summary['faulted_time'] * 1e3:8.2f} ms "
              f"host={summary['baseline_time'] * 1e3:8.2f} ms  {verdict}",
              flush=True)

    names = list(args.queries)
    queries = None
    if args.generated:
        queries = generated_queries(args.generated, seed=args.fault_seed)
        names += sorted(queries)
        print(f"generated workload: {', '.join(sorted(queries))}",
              flush=True)

    matrix = chaos_matrix(env, names, scenarios=args.scenarios,
                          seed=args.fault_seed, trace_dir=args.trace_dir,
                          on_result=on_result, queries=queries)

    cells = [summary for row in matrix.values() for summary in row.values()]
    failures = [summary for summary in cells if not summary["ok"]]
    with open(args.output, "w") as handle:
        json.dump({"scale": args.scale, "seed": args.seed,
                   "fault_seed": args.fault_seed, "matrix": matrix,
                   "cells": len(cells), "failures": len(failures)},
                  handle, indent=1)

    print(f"\n{len(cells)} chaos cells, {len(failures)} failure(s); "
          f"total {time.time() - start:.0f}s; results in {args.output}")
    for summary in failures:
        print(f"  FAIL {summary['query']}/{summary['scenario']}: "
              f"rows_match={summary['rows_match']} "
              f"bounded={summary['bounded']}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
