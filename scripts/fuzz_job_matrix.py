#!/usr/bin/env python3
"""Differential fuzz sweep: generated SQL across every execution layer.

    python scripts/fuzz_job_matrix.py [--queries 200] [--seed 7] \\
        [--scale S] [--dataset-seed N] [--modes host split ...] \\
        [--corpus-dir fuzz-corpus] [--output FUZZ_matrix.json]

Generates ``--queries`` seed-deterministic SQL queries
(:mod:`repro.workloads.sqlgen`) and executes every one host-only, under
split execution, as a scheduled concurrent workload, and on 2/4-device
scatter-gather clusters, diffing rows against the host-BLK baseline and
checking ``utilization <= 1`` (:mod:`repro.bench.fuzz`).

The sweep runs twice with the same seeds; the script exits non-zero if
any (query, mode) check fails *or* the two runs' summaries differ —
CI gates on both correctness and byte-for-byte reproducibility.  The
full corpus (and any shrunk failures) are written under ``--corpus-dir``
for artifact upload and replay via ``repro fuzz --replay``.
"""

import argparse
import json
import sys
import time

from repro.bench.fuzz import MODES, FuzzHarness, write_corpus
from repro.workloads.loader import build_environment


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="differential fuzzing over generated SQL workloads")
    parser.add_argument("--queries", type=int, default=200,
                        help="generated query count (default 200)")
    parser.add_argument("--seed", type=int, default=7,
                        help="generator seed (default 7)")
    parser.add_argument("--scale", type=float, default=0.0002,
                        help="dataset scale factor (default 0.0002)")
    parser.add_argument("--dataset-seed", type=int, default=7,
                        help="dataset seed (default 7)")
    parser.add_argument("--modes", nargs="*", default=None,
                        choices=list(MODES),
                        help=f"differential modes (default {list(MODES)})")
    parser.add_argument("--corpus-dir", default="fuzz-corpus",
                        help="corpus/failures output directory")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk workload cache directory")
    parser.add_argument("--output", default="FUZZ_matrix.json",
                        help="output JSON path")
    return parser.parse_args(argv)


def main(argv=None):
    args = parse_args(argv)
    modes = tuple(args.modes) if args.modes else MODES

    start = time.time()
    env = build_environment(scale=args.scale, seed=args.dataset_seed,
                            workload_cache_dir=args.cache_dir)
    print(f"environment: scale={args.scale}, {env.total_rows:,} rows "
          f"({time.time() - start:.0f}s)", flush=True)

    def sweep():
        harness = FuzzHarness(env, seed=args.seed, modes=modes)
        return harness.run(args.queries)

    report = sweep()
    print(f"sweep 1: {report.checks} checks, "
          f"{report.infeasible} infeasible, "
          f"{len(report.failures)} failures "
          f"({time.time() - start:.0f}s)", flush=True)
    replay = sweep()
    print(f"sweep 2: {replay.checks} checks, "
          f"{len(replay.failures)} failures", flush=True)
    deterministic = (json.dumps(report.to_dict(), sort_keys=True)
                     == json.dumps(replay.to_dict(), sort_keys=True))

    paths = write_corpus(report, args.corpus_dir)
    payload = {
        "scale": args.scale,
        "dataset_seed": args.dataset_seed,
        "generator_seed": args.seed,
        "queries": args.queries,
        "modes": list(modes),
        "deterministic": deterministic,
        "report": report.to_dict(),
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=1)

    for failure in report.failures:
        print(f"FAIL {failure.name} [{failure.mode}/{failure.kind}] "
              f"{failure.detail}")
        if failure.shrunk_sql:
            print(f"  shrunk: {failure.shrunk_sql!r}")
    print(f"\ncorpus in {paths['corpus']}; deterministic={deterministic}; "
          f"total {time.time() - start:.0f}s; results in {args.output}")
    return 0 if report.ok and deterministic else 1


if __name__ == "__main__":
    sys.exit(main())
