#!/usr/bin/env python3
"""Multi-device scaling benchmark: scatter-gather JOB over a cluster.

    python scripts/cluster_job_matrix.py [--scale S] [--seed N] \\
        [--workload-seed N] [--queries 1a 8c ...] [--devices 1 2 4 8] \\
        [--partitioner range|hash] [--smoke] \\
        [--output BENCH_cluster.json]

Sweeps device counts over a JOB query mix: each query scatter-gathers
across the whole cluster, and the mix also replays as a closed-loop
scheduled workload per count.  ``--smoke`` shrinks the sweep for CI (the
given ``--devices``, 3 queries, 2 clients).  The run is verified
deterministic before writing: the sweep executes twice with the same
seeds and the script exits non-zero if the two summaries differ, so CI
can gate on reproducibility.
"""

import argparse
import json
import sys
import time

from repro.bench.cluster import DEFAULT_QUERIES, cluster_matrix
from repro.workloads.loader import build_environment

#: Queries the --smoke sweep keeps: selection-, join- and
#: aggregate-heavy representatives.
SMOKE_QUERIES = ["1a", "3b", "8c"]


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="multi-device scatter-gather scaling benchmark")
    parser.add_argument("--scale", type=float, default=0.0002,
                        help="dataset scale factor (default 0.0002)")
    parser.add_argument("--seed", type=int, default=7,
                        help="dataset seed (default 7)")
    parser.add_argument("--workload-seed", type=int, default=0,
                        help="partitioner/arrival seed (default 0)")
    parser.add_argument("--queries", nargs="*", default=None,
                        help=f"JOB query mix (default {DEFAULT_QUERIES})")
    parser.add_argument("--devices", nargs="*", type=int,
                        default=[1, 2, 4, 8],
                        help="device counts to sweep (default 1 2 4 8)")
    parser.add_argument("--partitioner", choices=["range", "hash"],
                        default="range",
                        help="driving-table partitioning layout")
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop clients per workload cell")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode: 3 queries, 2 clients")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk workload cache directory")
    parser.add_argument("--output", default="BENCH_cluster.json",
                        help="output JSON path")
    return parser.parse_args(argv)


def main(argv=None):
    args = parse_args(argv)
    queries = args.queries or DEFAULT_QUERIES
    clients = args.clients
    if args.smoke:
        queries = args.queries or SMOKE_QUERIES
        clients = 2

    start = time.time()
    env = build_environment(scale=args.scale, seed=args.seed,
                            workload_cache_dir=args.cache_dir)
    print(f"environment: scale={args.scale}, {env.total_rows:,} rows "
          f"({time.time() - start:.0f}s)", flush=True)

    def on_result(n_devices, summary):
        latency = summary["scatter_gather"]["latency"]
        workload = summary["workload"]
        print(f"{n_devices:>2} device(s): "
              f"p50={latency['p50'] * 1e3:7.2f} ms  "
              f"p95={latency['p95'] * 1e3:7.2f} ms  "
              f"workload makespan={workload['makespan'] * 1e3:8.2f} ms  "
              f"qps={workload['queries_per_second']:8.1f}", flush=True)

    def run_matrix(callback):
        return cluster_matrix(
            env, device_counts=tuple(args.devices), query_names=queries,
            partitioner=args.partitioner, seed=args.workload_seed,
            clients=clients, on_result=callback)

    matrix = run_matrix(on_result)
    print("re-running to verify determinism...", flush=True)
    replay = run_matrix(lambda n_devices, summary: None)
    deterministic = (json.dumps(matrix, sort_keys=True)
                     == json.dumps(replay, sort_keys=True))

    payload = {
        "scale": args.scale,
        "seed": args.seed,
        "workload_seed": args.workload_seed,
        "partitioner": args.partitioner,
        "queries": queries,
        "devices": args.devices,
        "smoke": args.smoke,
        "deterministic": deterministic,
        "matrix": matrix,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=1)

    speedups = {n: round(cell["speedup"]["workload"], 3)
                for n, cell in matrix["cells"].items()}
    print(f"\nworkload speedups vs 1 device: {speedups}")
    print(f"deterministic={deterministic}; total "
          f"{time.time() - start:.0f}s; results in {args.output}")
    return 0 if deterministic else 1


if __name__ == "__main__":
    sys.exit(main())
