#!/usr/bin/env python3
"""Run the complete 113-query Fig-12/Fig-13 sweep and record the results.

    python scripts/full_job_matrix.py [scale] [output.json]

Sweeps host-only, every hybrid split and full NDP for every JOB query,
classifies the matrix (Fig 12) and the planner decisions (Fig 13), and
writes everything to JSON.  Expect a long run: the heavy families
(18, 25, 28-31) have explosive intermediate results by design.
"""

import json
import sys
import time

from repro.bench.experiments import (classify_matrix,
                                     exp2_job_matrix_fig12,
                                     exp3_decisions_fig13)
from repro.bench.reporting import render_family_grid, render_matrix_summary
from repro.workloads.job_queries import all_queries
from repro.workloads.loader import build_environment


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.0002
    output = sys.argv[2] if len(sys.argv) > 2 else "full_job_matrix.json"

    start = time.time()
    env = build_environment(scale=scale, seed=7)
    print(f"environment: scale={scale}, {env.total_rows:,} rows "
          f"({time.time() - start:.0f}s)", flush=True)

    matrix = {}
    names = sorted(all_queries())
    for i, name in enumerate(names):
        t0 = time.time()
        matrix.update(exp2_job_matrix_fig12(env, query_names=[name]))
        host = matrix[name].get("host-only")
        print(f"[{i + 1}/{len(names)}] {name}: "
              f"host={host * 1e3 if host else -1:.1f} ms "
              f"({time.time() - t0:.0f}s)", flush=True)

    summary = classify_matrix(matrix)
    decisions = exp3_decisions_fig13(env, matrix)
    with open(output, "w") as handle:
        json.dump({"scale": scale, "matrix": matrix, "summary": summary,
                   "decisions": {k: v for k, v in decisions.items()
                                 if k != "per_query"},
                   "decision_outcomes": decisions["per_query"]},
                  handle, indent=1)

    print()
    print(render_family_grid(summary["per_query"],
                             legend="g=green y=yellow r=red"))
    print()
    print(render_matrix_summary(summary))
    print()
    print(render_family_grid(decisions["per_query"],
                             legend="b=best a=acceptable m=miss"))
    print(f"decision quality: best {decisions['best_pct']:.1f}% "
          f"(paper ~20.35%), acceptable {decisions['acceptable_pct']:.1f}% "
          f"(paper ~11.5%), suitable {decisions['suitable_pct']:.1f}% "
          f"(paper ~31.8%)")
    print(f"total {time.time() - start:.0f}s; results in {output}")


if __name__ == "__main__":
    main()
