#!/usr/bin/env python3
"""Run the complete 113-query Fig-12/Fig-13 sweep and record the results.

    python scripts/full_job_matrix.py [--scale S] [--seed N] \\
        [--workers N] [--cache-dir DIR] [--output out.json]

Sweeps host-only, every hybrid split and full NDP for every JOB query,
classifies the matrix (Fig 12) and the planner decisions (Fig 13), and
writes everything to JSON.  ``--workers N`` shards the queries over N
processes; with a fixed seed the report JSON is byte-identical to the
serial sweep.  ``--cache-dir`` caches the generated workload on disk so
repeated sweeps (and every worker) skip dataset regeneration.
"""

import argparse
import json
import time

from repro.bench.experiments import classify_matrix, exp3_decisions_fig13
from repro.bench.parallel import sweep_job_matrix
from repro.bench.reporting import render_family_grid, render_matrix_summary
from repro.workloads.job_queries import all_queries
from repro.workloads.loader import build_environment


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="full 113-query JOB strategy sweep (Figs 12/13)")
    parser.add_argument("--scale", type=float, default=0.0002,
                        help="dataset scale factor (default 0.0002)")
    parser.add_argument("--seed", type=int, default=7,
                        help="dataset seed (default 7)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep (default 1)")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk workload cache directory")
    parser.add_argument("--trace-dir", default=None,
                        help="write one Perfetto trace per (query, "
                             "feasible strategy) into this directory")
    parser.add_argument("--output", default="full_job_matrix.json",
                        help="output JSON path")
    return parser.parse_args(argv)


def main(argv=None):
    args = parse_args(argv)

    start = time.time()
    env = build_environment(scale=args.scale, seed=args.seed,
                            workload_cache_dir=args.cache_dir)
    print(f"environment: scale={args.scale}, {env.total_rows:,} rows "
          f"({time.time() - start:.0f}s)", flush=True)

    names = sorted(all_queries())
    progress = {"done": 0, "t0": time.time()}

    def on_result(name, times):
        progress["done"] += 1
        host = times.get("host-only")
        print(f"[{progress['done']}/{len(names)}] {name}: "
              f"host={host * 1e3 if host else -1:.1f} ms "
              f"({time.time() - progress['t0']:.0f}s)", flush=True)
        progress["t0"] = time.time()

    sweep_start = time.time()
    matrix = sweep_job_matrix(query_names=names, workers=args.workers,
                              env=env, workload_cache_dir=args.cache_dir,
                              on_result=on_result, trace_dir=args.trace_dir)
    sweep_seconds = time.time() - sweep_start

    summary = classify_matrix(matrix)
    decisions = exp3_decisions_fig13(env, matrix)
    with open(args.output, "w") as handle:
        json.dump({"scale": args.scale, "seed": args.seed,
                   "matrix": matrix, "summary": summary,
                   "decisions": {k: v for k, v in decisions.items()
                                 if k != "per_query"},
                   "decision_outcomes": decisions["per_query"]},
                  handle, indent=1)

    print()
    print(render_family_grid(summary["per_query"],
                             legend="g=green y=yellow r=red"))
    print()
    print(render_matrix_summary(summary))
    print()
    print(render_family_grid(decisions["per_query"],
                             legend="b=best a=acceptable m=miss"))
    print(f"decision quality: best {decisions['best_pct']:.1f}% "
          f"(paper ~20.35%), acceptable {decisions['acceptable_pct']:.1f}% "
          f"(paper ~11.5%), suitable {decisions['suitable_pct']:.1f}% "
          f"(paper ~31.8%)")
    print(f"sweep {sweep_seconds:.0f}s with {args.workers} worker(s); "
          f"total {time.time() - start:.0f}s; results in {args.output}")


if __name__ == "__main__":
    main()
