#!/usr/bin/env python3
"""Wall-clock benchmark of the JOB strategy sweep (columnar tentpole).

    python scripts/columnar_bench.py [--scale S] [--seed N] \\
        [--queries 1a 6b ...] [--label columnar] \\
        [--output BENCH_columnar_after.json] \\
        [--baseline BENCH_columnar_smoke_baseline.json] \\
        [--max-regression 2.0]

Runs ``run_all_splits`` (host-only, every hybrid split, full NDP) for
every requested JOB query and records *wall-clock* seconds per query
plus the sweep total.  This is the before/after evidence for the
vectorized columnar executor: ``BENCH_columnar_before.json`` was
captured on the row-at-a-time engine, ``BENCH_columnar_after.json`` on
the `ColumnBatch` engine, over the identical sweep.

With ``--baseline`` the script exits non-zero when the measured total
exceeds ``--max-regression`` times the baseline total — the CI
``perf-smoke`` job runs a fixed 12-query sweep against the committed
smoke baseline this way.
"""

import argparse
import json
import platform
import sys
import time

from repro.errors import ReproError
from repro.workloads.job_queries import all_queries, query
from repro.workloads.loader import build_environment

#: Fixed sweep of the CI ``perf-smoke`` job: one representative per
#: size band — short 2-3-table queries up to the widest JOB pipelines.
SMOKE_QUERIES = ("1a", "2a", "3b", "4a", "6a", "8c", "10a", "14a",
                 "16b", "17e", "22c", "25a")


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="wall-clock JOB sweep benchmark (columnar engine)")
    parser.add_argument("--scale", type=float, default=0.0002,
                        help="dataset scale factor (default 0.0002)")
    parser.add_argument("--seed", type=int, default=7,
                        help="dataset seed (default 7)")
    parser.add_argument("--queries", nargs="*", default=None,
                        help="JOB query names (default: all 113)")
    parser.add_argument("--smoke", action="store_true",
                        help=f"run the fixed perf-smoke sweep "
                             f"({', '.join(SMOKE_QUERIES)})")
    parser.add_argument("--label", default="columnar",
                        help="engine label recorded in the payload")
    parser.add_argument("--output", default="BENCH_columnar_after.json",
                        help="output JSON path")
    parser.add_argument("--baseline", default=None,
                        help="committed baseline JSON to regress against")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when total wall-clock exceeds this "
                             "factor times the baseline (default 2.0)")
    return parser.parse_args(argv)


def run_sweep(env, names):
    """{query: {wall_seconds, strategies, feasible, rows}} plus total."""
    per_query = {}
    t_sweep = time.perf_counter()
    for name in names:
        sql = query(name)
        t0 = time.perf_counter()
        reports = env.runner.run_all_splits(sql)
        wall = time.perf_counter() - t0
        feasible = {label: report for label, report in reports.items()
                    if not isinstance(report, ReproError)}
        per_query[name] = {
            "wall_seconds": wall,
            "strategies": len(reports),
            "feasible": len(feasible),
            "rows": len(feasible["host-only"].result),
        }
        print(f"{name}: {wall * 1e3:.1f} ms "
              f"({len(feasible)}/{len(reports)} strategies)", flush=True)
    return per_query, time.perf_counter() - t_sweep


def main(argv=None):
    args = parse_args(argv)
    if args.smoke and args.queries:
        print("--smoke and --queries are mutually exclusive",
              file=sys.stderr)
        return 2
    names = (list(SMOKE_QUERIES) if args.smoke
             else args.queries or sorted(all_queries()))

    t0 = time.perf_counter()
    env = build_environment(scale=args.scale, seed=args.seed)
    build_seconds = time.perf_counter() - t0
    print(f"environment: scale={args.scale}, {env.total_rows:,} rows "
          f"({build_seconds:.1f}s)", flush=True)

    per_query, total = run_sweep(env, names)
    payload = {
        "engine": args.label,
        "scale": args.scale,
        "seed": args.seed,
        "python": platform.python_version(),
        "queries": len(names),
        "build_seconds": build_seconds,
        "total_wall_seconds": total,
        "per_query": per_query,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"{len(names)} queries in {total:.1f}s -> {args.output}")

    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        budget = baseline["total_wall_seconds"] * args.max_regression
        print(f"baseline ({baseline.get('engine', '?')}): "
              f"{baseline['total_wall_seconds']:.1f}s, budget "
              f"{budget:.1f}s, measured {total:.1f}s")
        if total > budget:
            print(f"PERF REGRESSION: {total:.1f}s > "
                  f"{args.max_regression:.1f}x baseline", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
